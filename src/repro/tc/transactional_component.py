"""The Transactional Component (Section 4.1.1).

The TC is the client of one or more DCs.  It provides:

1. **Transactional locking** with no page knowledge — record, gap and
   range-partition locks via the Section 3.1 protocols — and thereby the
   obligation that *no two conflicting operations are ever in flight at a
   DC simultaneously* (operations are only sent while their lock is held,
   strict 2PL holds locks to transaction end, and rollback/cleanup
   operations are sent before locks are released).
2. **Transaction atomicity**: commit after all forward operations, or
   rollback by inverse operations in reverse chronological order.
3. **Logical undo/redo logging** in OPSR order (LSN assignment and log
   append are atomic), with undo information complete at append time: the
   TC validates existence and learns prior values *under its own locks*
   before logging — the unbundled substitute for learning them inside the
   page, and one of the honest costs of unbundling (extra reads, counted).
4. **Log forcing** for durability, EOSL/LWM propagation for the causality
   and low-water contracts, resend with unique request ids for
   exactly-once execution, checkpointing, and restart.

A single TC spanning several DCs commits with *one* log force and no
two-phase commit: the TC log is the only commit point (Section 6.2.2 notes
the same for versioned cross-TC sharing).
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.api import (
    BatchedPerform,
    BatchedReply,
    CheckpointReply,
    CheckpointRequest,
    EndOfStableLog,
    LowWaterMark,
    OperationReply,
    PerformOperation,
    RedoComplete,
)
from repro.common.config import ChannelConfig, RangeLockProtocol, TcConfig
from repro.common.errors import (
    ComponentUnavailableError,
    CrashedError,
    DuplicateKeyError,
    LockTimeoutError,
    NoSuchRecordError,
    ReproError,
    ResendExhaustedError,
    TransactionAborted,
)
from repro.common.lsn import Lsn, NULL_LSN
from repro.common.ops import (
    DeleteOp,
    DiscardVersionsOp,
    IncrementOp,
    InsertOp,
    LogicalOperation,
    OpResult,
    OpStatus,
    ProbeNextKeysOp,
    PromoteVersionsOp,
    RangeReadOp,
    ReadFlavor,
    ReadOp,
    UpdateOp,
)
from repro.common.records import Key, RecordView, Value
from repro.dc.data_component import DataComponent
from repro.net.channel import MessageChannel
from repro.obs.tracing import NULL_SPAN, NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint
from repro.storage.buffer import ResetMode
from repro.tc.lock_manager import LockManager
from repro.tc.log import (
    AbortRecord,
    CheckpointRecord,
    CommitRecord,
    CompensationRecord,
    GroupCommitCoalescer,
    OpRecord,
    TcLog,
    TxnEndRecord,
)
from repro.tc.range_protocols import FetchAheadProtocol, RangePartitionProtocol

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.faults import FaultInjector


class _Absent:
    """Cached knowledge that a key does not exist (under our lock)."""

    def __repr__(self) -> str:
        return "<ABSENT>"


ABSENT = _Absent()


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A handle for one user transaction; all work delegates to the TC."""

    def __init__(self, tc: "TransactionalComponent", txn_id: int) -> None:
        self._tc = tc
        self.txn_id = txn_id
        self.state = TransactionState.ACTIVE
        self._started = time.perf_counter()
        #: Root span of this transaction's trace (NULL_SPAN when tracing is
        #: off).  Every user call re-activates it, so lock waits, channel
        #: sends and DC execution all land in one tree.
        if tc.tracer.enabled:
            self.span = tc.tracer.start_trace(
                "txn", component=tc.name, txn_id=txn_id
            )
        else:
            self.span = NULL_SPAN
        #: Forward op records, in order (the undo chain).
        self.op_records: list[OpRecord] = []
        #: Values known under our locks: (table, key) -> value | ABSENT.
        self.known: dict[tuple[str, Key], object] = {}
        #: Table-intent lock memo, table -> granted mode.  Strict 2PL never
        #: releases a lock mid-transaction, so once a table-intent mode is
        #: granted, a covered re-request needs no lock-manager call at all.
        self.table_locks: dict[str, object] = {}
        #: Keys touched in versioned tables, per table (cleanup targets).
        self.versioned_keys: dict[str, set[Key]] = {}
        #: Pipelined mutations posted but not yet acknowledged:
        #: (table, key) -> the op record awaiting its reply.
        self.in_flight: dict[tuple[str, Key], OpRecord] = {}
        #: Rollback progress, set once an abort starts (see
        #: ``TransactionalComponent.rollback_operations``): the records
        #: whose inverses are not yet stably applied, newest first.  A
        #: retry after a DC outage resumes exactly here.
        self.undo_pending: Optional[list] = None
        #: LSNs of logged operations whose only delivery attempt failed
        #: with the DC unreachable — the DC may or may not have executed
        #: them.  Rollback must repeat history (resend with the original
        #: LSN) before inverting such a record; see
        #: ``TransactionalComponent.rollback_operations``.
        self.unconfirmed: set[Lsn] = set()
        #: Concurrency-control bookkeeping (tc/cc.py): read/scan sets and
        #: write slots of the validating policies.  None under 2PL.
        self.cc_state = None

    # -- operations ---------------------------------------------------------

    def insert(
        self, table: str, key: Key, value: Value, deferred: bool = False
    ) -> None:
        """Insert; with ``deferred=True`` the operation is posted to the
        channel without waiting for its reply (pipelining).  Non-
        conflicting deferred operations may be executed by the DC in any
        order — the abLSN machinery (Section 5.1) absorbs it.  Call
        :meth:`sync` (or commit/abort, which sync implicitly) to collect
        acknowledgements."""
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_insert(self, table, key, value, deferred=deferred)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.insert", component=self._tc.name, table=table
            ):
                self._tc.do_insert(self, table, key, value, deferred=deferred)
        finally:
            self._close_span_if_done()

    def update(
        self, table: str, key: Key, value: Value, deferred: bool = False
    ) -> None:
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_update(self, table, key, value, deferred=deferred)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.update", component=self._tc.name, table=table
            ):
                self._tc.do_update(self, table, key, value, deferred=deferred)
        finally:
            self._close_span_if_done()

    def delete(self, table: str, key: Key, deferred: bool = False) -> None:
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_delete(self, table, key, deferred=deferred)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.delete", component=self._tc.name, table=table
            ):
                self._tc.do_delete(self, table, key, deferred=deferred)
        finally:
            self._close_span_if_done()

    def increment(
        self, table: str, key: Key, delta: float, deferred: bool = False
    ) -> None:
        """Add ``delta`` to a numeric record (logical undo: the negated
        delta — no prior value enters the log)."""
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_increment(self, table, key, delta, deferred=deferred)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.increment", component=self._tc.name, table=table
            ):
                self._tc.do_increment(self, table, key, delta, deferred=deferred)
        finally:
            self._close_span_if_done()

    def sync(self) -> None:
        """Deliver all pipelined operations and collect their replies."""
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.sync_pipeline(self)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.sync", component=self._tc.name
            ):
                self._tc.sync_pipeline(self)
        finally:
            self._close_span_if_done()

    def read(self, table: str, key: Key) -> Optional[Value]:
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_read(self, table, key)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.read", component=self._tc.name, table=table
            ):
                return self._tc.do_read(self, table, key)
        finally:
            self._close_span_if_done()

    def scan(
        self,
        table: str,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.do_scan(self, table, low, high, limit)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.scan", component=self._tc.name, table=table
            ):
                return self._tc.do_scan(self, table, low, high, limit)
        finally:
            self._close_span_if_done()

    def commit(self) -> None:
        tracer = self._tc.tracer
        if not tracer.enabled:
            try:
                self._tc.commit(self)
            finally:
                self._observe_commit_latency()
            return
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.commit", component=self._tc.name
            ):
                self._tc.commit(self)
        finally:
            self._observe_commit_latency()
            self._close_span_if_done()

    def _observe_commit_latency(self) -> None:
        if self.state is TransactionState.COMMITTED:
            self._tc._commit_latency.append(
                (time.perf_counter() - self._started) * 1000.0
            )

    def abort(self) -> None:
        tracer = self._tc.tracer
        if not tracer.enabled:
            return self._tc.abort(self)
        try:
            with tracer.activate(self.span), tracer.span(
                "tc.abort", component=self._tc.name
            ):
                self._tc.abort(self)
        finally:
            self._close_span_if_done()

    def _close_span_if_done(self) -> None:
        """Finish the root span once the transaction reaches a terminal
        state (idempotent; forced aborts inside an operation land here)."""
        if self.state is not TransactionState.ACTIVE:
            self.span.finish(outcome=self.state.value)

    # -- context manager: abort-on-error safety net ------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.state is TransactionState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def _check_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionAborted(self.txn_id, f"transaction is {self.state.value}")


class SnapshotReader:
    """Lock-free reads as of a fixed per-DC watermark (Section 6.3).

    Obtained from :meth:`TransactionalComponent.begin_snapshot`; usable for
    as long as the DCs' retention horizons cover the watermark, after which
    reads raise :class:`~repro.common.errors.SnapshotTooOldError`.
    """

    def __init__(self, tc: "TransactionalComponent", watermarks: dict[str, int]) -> None:
        self._tc = tc
        self.watermarks = watermarks

    def _as_of(self, table: str) -> int:
        route = self._tc._route(table)
        watermark = self.watermarks.get(route.dc_name)
        if watermark is None:
            # Degraded snapshot: this DC was down at begin_snapshot time.
            from repro.common.errors import ComponentUnavailableError

            raise ComponentUnavailableError(f"DC {route.dc_name}")
        return watermark

    def read(self, table: str, key: Key) -> Optional[Value]:
        return self._tc.read_snapshot(table, key, self._as_of(table))

    def scan(
        self,
        table: str,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        return self._tc.scan_snapshot(table, self._as_of(table), low, high, limit)


class _TableRoute:
    __slots__ = ("dc_name", "versioned")

    def __init__(self, dc_name: str, versioned: bool) -> None:
        self.dc_name = dc_name
        self.versioned = versioned


class TransactionalComponent:
    """One TC instance; may serve many concurrent transactions and DCs."""

    _ids = itertools.count(1)

    def __init__(
        self,
        tc_id: Optional[int] = None,
        config: Optional[TcConfig] = None,
        metrics: Optional[Metrics] = None,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional[object] = None,
        log: Optional[TcLog] = None,
    ) -> None:
        self.tc_id = tc_id if tc_id is not None else next(self._ids)
        self.config = config or TcConfig()
        self.metrics = metrics or Metrics()
        self.name = f"tc{self.tc_id}"
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Commit latencies land in a lock-free buffer; ``metrics`` folds
        #: them into the ``tc.commit_latency_ms`` distribution lazily.
        self._commit_latency = self.metrics.buffer("tc.commit_latency_ms")
        if faults is not None:
            faults.register_component(self.name, "tc", self.crash)
        #: Crash listeners ``(name, kind)`` — the supervisor subscribes.
        self.on_crash: list[Callable[[str, str], None]] = []
        #: Injectable so a durable subclass (the TC service tier's
        #: journal-backed log) can be bound before the group-commit
        #: coalescer below captures the reference.
        self.log = log if log is not None else TcLog(self.metrics)
        self.log.use_tracer(self.tracer)
        self.locks = LockManager(
            self.metrics,
            self.config.deadlock_detection,
            self.config.lock_timeout,
            tracer=self.tracer,
            stripes=self.config.lock_stripes,
        )
        if self.config.range_protocol is RangeLockProtocol.FETCH_AHEAD:
            self.protocol = FetchAheadProtocol(self)
        else:
            self.protocol = RangePartitionProtocol(self)
        # Pluggable concurrency control (docs/architecture.md §19): every
        # read/scan/write-lock decision and the commit-time validation
        # gate dispatch through this policy.  Imported lazily — tc/cc.py
        # references this module's sentinels at import time.
        from repro.tc.cc import make_policy

        self.cc = make_policy(self)
        self._channels: dict[str, MessageChannel] = {}
        self._dcs: dict[str, DataComponent] = {}
        self._routes: dict[str, _TableRoute] = {}
        self._txn_ids = itertools.count(1)
        self._active: dict[int, Transaction] = {}
        self._admin = threading.RLock()
        #: DCs whose redo stream this TC is currently resending, mapped to
        #: the thread running the resend.  Ordinary dispatch stalls on
        #: these (see :meth:`_await_redo_quiesce`); the redo thread itself
        #: passes through.
        self._dc_redo: dict[str, int] = {}
        self._redo_cv = threading.Condition()
        self._rssp: Lsn = NULL_LSN
        #: Per-DC spontaneous stability hints (Section 4.2.1).
        self._rssp_hints: dict[str, Lsn] = {}
        #: Aborted transactions whose compensation a DC outage interrupted.
        self._zombie_rollbacks: list[Transaction] = []
        #: Committed transactions whose post-commit version cleanup a DC
        #: outage interrupted (the commit itself is durable and acked).
        self._zombie_completions: list[Transaction] = []
        self._completions_since_lwm = 0
        self._crashed = False
        self.reset_mode = ResetMode.RECORD_RESET
        #: Group commit (docs/architecture.md §9.3): committing transactions
        #: share log forces, but a commit is acknowledged only once its
        #: record is stable — validates group_commit_size here, too.
        self._group_commit = GroupCommitCoalescer(
            self.log,
            self.config.group_commit_size,
            self.config.group_commit_deadline_ms,
            self.metrics,
        )
        if self.config.batch_max_ops < 1:
            raise ValueError(
                f"batch_max_ops must be >= 1, got {self.config.batch_max_ops}"
            )
        if self.config.undo_cache_size < 1:
            raise ValueError(
                f"undo_cache_size must be >= 1, got {self.config.undo_cache_size}"
            )
        self._batch_ops = self.config.batch_ops
        #: Undo-info cache (docs/architecture.md §9.2): committed values
        #: this TC has learned, (table, key) -> value | ABSENT.  None when
        #: the fast path is off.  Sound because this TC is the sole writer
        #: of the keys it caches; every event that could falsify an entry
        #: (own write aborted/ambiguous, DC reset, TC crash) invalidates.
        self._undo_cache: Optional[OrderedDict] = (
            OrderedDict() if self.config.undo_cache else None
        )
        #: Insert fast path (docs/architecture.md §9.2): per-table upper
        #: bound on every key currently in the table.  ``_table_high`` is
        #: learned from authoritative empty probe results ("no key above
        #: X") and thereafter maintained under this TC's own inserts;
        #: ``_insert_high`` tracks the largest key this TC has *attempted*
        #: to insert, so an unsent batched insert can never slip above a
        #: bound learned from a concurrent probe.  Both are overestimates
        #: of the true maximum — always safe, since they are only used to
        #: prove "no successor exists" (key > bound).  Trusted only while
        #: this TC is the table's sole writer (``ownership_guard is None``).
        self._table_high: dict[str, Key] = {}
        self._insert_high: dict[str, Key] = {}
        #: RetryPolicy is stateless, so the batch path reuses one instance
        #: instead of rebuilding it per envelope.
        self._retry_policy = self.config.retry_policy()
        # Hot-path counter slots, bound once (see Metrics.counter).
        self._undo_reads_slot = self.metrics.counter("tc.undo_info_reads")
        self._cache_hits_slot = self.metrics.counter("tc.undo_cache_hits")
        self._cache_misses_slot = self.metrics.counter("tc.undo_cache_misses")
        self._mutations_slot = self.metrics.counter("tc.mutations")
        self._deferred_slot = self.metrics.counter("tc.deferred_mutations")
        self._begins_slot = self.metrics.counter("tc.begins")
        self._commits_slot = self.metrics.counter("tc.commits")
        self._syncs_slot = self.metrics.counter("tc.pipeline_syncs")
        #: Optional hook enforcing Section 6's disjoint update rights when
        #: several TCs share a DC: ``guard(table, key) -> bool``.  Installed
        #: by the cloud deployment layer; None means "owns everything".
        self.ownership_guard = None

    # -- wiring ------------------------------------------------------------------

    def attach_dc(
        self, dc: DataComponent, channel_config: Optional[ChannelConfig] = None
    ) -> MessageChannel:
        """Connect to a DC; installs the causality/restart hooks and learns
        the DC's table routes.

        The channel implementation follows the endpoint: an in-process DC
        gets the simulated :class:`MessageChannel`, an out-of-process
        :class:`~repro.net.process.RemoteDc` gets a pipelining
        :class:`~repro.net.process.ProcessChannel` over its pipe."""
        from repro.net.channel import build_channel

        channel = build_channel(
            dc, channel_config, self.metrics, faults=self.faults, tracer=self.tracer
        )
        with self._admin:
            self._channels[dc.name] = channel
            self._dcs[dc.name] = dc
        dc.register_tc(
            self.tc_id,
            force_log=self._force_through,
            on_dc_restart=self._on_dc_restart,
            on_rssp_hint=self._on_rssp_hint,
        )
        self.refresh_routes(dc)
        return channel

    def refresh_routes(self, dc: DataComponent) -> None:
        """(Re)learn which tables the DC hosts (after create_table calls)."""
        with self._admin:
            for name in dc.table_names():
                handle = dc.table(name)
                self._routes[name] = _TableRoute(
                    dc.name, handle.descriptor.versioned
                )

    def _route(self, table: str) -> _TableRoute:
        route = self._routes.get(table)
        if route is None:
            raise ReproError(f"TC {self.tc_id}: no DC hosts table {table!r}")
        return route

    def _check_up(self) -> None:
        if self._crashed:
            raise CrashedError(f"TC {self.tc_id}")

    def bump_txn_ids_past(self, txn_id: int) -> None:
        """Advance the txn-id allocator past ``txn_id``.

        Restart calls this with the largest txn id in the stable log: a
        fresh TC incarnation (the crashed process was respawned, so the
        in-memory counter reset) would otherwise hand out ids that
        already appear in the log, and the next restart's analysis —
        which groups records by txn id — would merge two unrelated
        transactions into one.
        """
        floor = txn_id - self.tc_id * 1_000_000
        if floor > 0:
            self._txn_ids = itertools.count(floor + 1)

    # -- transaction lifecycle -----------------------------------------------------

    def begin(self) -> Transaction:
        self._check_up()
        txn = Transaction(self, self.tc_id * 1_000_000 + next(self._txn_ids))
        with self._admin:
            self._active[txn.txn_id] = txn
        self._begins_slot.value += 1
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: force the log through the commit record, then run
        version cleanup, then release locks (strict through cleanup).

        Durability is force-before-ack at every ``group_commit_size``:
        this method returns only once the commit record is on the stable
        log.  With ``group_commit_size > 1`` concurrently-committing
        transactions share the force (see
        :class:`~repro.tc.log.GroupCommitCoalescer`).

        If a DC outage interrupts the *post-commit* cleanup, the commit
        decision stands: the commit record is forced, locks are released
        and the commit is acknowledged, while the cleanup is parked as a
        zombie completion for the supervisor to re-drive after the heal.
        """
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        self._group_commit.enter()
        try:
            self._commit_inner(txn)
        finally:
            self._group_commit.exit()

    def _commit_inner(self, txn: Transaction) -> None:
        try:
            self.sync_pipeline(txn)
            # Commit-time CC gate (OCC/MVCC read validation; a no-op for
            # 2PL).  Runs after the pipeline is synced — every in-place
            # write applied — and before the commit record exists, so a
            # veto is an ordinary abort.
            self.cc.validate(txn)
        except ReproError as exc:
            # No commit record exists yet, so the outcome is determinate:
            # roll back (outage-tolerantly) and report a plain abort rather
            # than leaving the caller to guess.
            if self._crashed:
                txn.state = TransactionState.ABORTED  # crash cleared the rest
            else:
                self.abort(txn)
            raise TransactionAborted(
                txn.txn_id, f"commit abandoned: {exc}"
            ) from exc
        record = self.log.append(
            lambda lsn: CommitRecord(lsn=lsn, txn_id=txn.txn_id)
        )
        self._group_commit.wait_stable(record.lsn, self.force_log)
        # Post-commit version cleanup: logged after the commit record so a
        # crash-time loser is never seen with promoted versions.
        try:
            if txn.versioned_keys:
                for table, keys in sorted(txn.versioned_keys.items()):
                    self._send_version_cleanup(txn.txn_id, table, keys, promote=True)
        except (CrashedError, ResendExhaustedError):
            self.force_log()
            self._cache_committed(txn)
            # The commit decision stands (zombie completion only parks the
            # version cleanup): settle CC registry state with the locks.
            self.cc.on_committed(txn)
            self.locks.release_all(txn.txn_id)
            txn.state = TransactionState.COMMITTED
            with self._admin:
                self._active.pop(txn.txn_id, None)
                self._zombie_completions.append(txn)
            self.metrics.incr("tc.zombie_completions")
            self._commits_slot.value += 1
            return
        self.log.append(lambda lsn: TxnEndRecord(lsn=lsn, txn_id=txn.txn_id))
        self._cache_committed(txn)
        self.cc.on_committed(txn)
        self.locks.release_all(txn.txn_id)
        txn.state = TransactionState.COMMITTED
        with self._admin:
            self._active.pop(txn.txn_id, None)
        self._commits_slot.value += 1

    def abort(self, txn: Transaction) -> None:
        """Roll back: inverse operations in reverse chronological order.

        Tolerates a DC outage at any point: unacknowledged pipelined
        operations and un-applied inverses stay recorded on the
        transaction, locks are released so the rest of the system makes
        progress, and the rollback resumes (from the exact compensation
        record where it stopped) when the DC heals.
        """
        self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            return
        # Undo-cache invalidation first (still under the txn's locks, and
        # before any rollback step can fail): everything this transaction
        # observed or wrote may be about to change under compensation — or
        # already be ambiguous at the DC.
        self._uncache_txn(txn)
        self.log.append(lambda lsn: AbortRecord(lsn=lsn, txn_id=txn.txn_id))
        try:
            self._drive_rollback(txn)
        except (CrashedError, ResendExhaustedError):
            # Zombie: the DC still holds uncommitted bytes for this txn's
            # keys, so its CC registry entries must OUTLIVE the lock
            # release — readers keep conflicting/seeing before-images
            # until _retry_zombie_rollbacks settles the keys.
            self.locks.release_all(txn.txn_id)
            txn.state = TransactionState.ABORTED
            with self._admin:
                self._active.pop(txn.txn_id, None)
                self._zombie_rollbacks.append(txn)
            self.metrics.incr("tc.zombie_rollbacks")
            self.metrics.incr("tc.aborts")
            return
        self.log.append(lambda lsn: TxnEndRecord(lsn=lsn, txn_id=txn.txn_id))
        self.cc.on_abort_settled(txn)
        self.locks.release_all(txn.txn_id)
        txn.state = TransactionState.ABORTED
        with self._admin:
            self._active.pop(txn.txn_id, None)
        self.metrics.incr("tc.aborts")

    def _drive_rollback(self, txn: Transaction) -> None:
        """Sync outstanding pipelined ops, then apply (remaining) inverses."""
        try:
            self.sync_pipeline(txn)
        except (CrashedError, ResendExhaustedError):
            raise
        except ReproError:
            # A deferred op was semantically rejected: it never executed
            # and sync already pruned it from the undo chain.
            pass
        if txn.undo_pending is None:
            txn.undo_pending = [
                record for record in reversed(txn.op_records) if record.undo is not None
            ]
        self.rollback_operations(
            txn.txn_id, txn.undo_pending, txn.versioned_keys, txn.unconfirmed
        )

    def rollback_operations(
        self,
        txn_id: int,
        to_undo: list,
        versioned_keys: dict[str, set[Key]],
        unconfirmed: Optional[set[Lsn]] = None,
    ) -> None:
        """Shared by runtime abort and restart undo.  ``to_undo`` holds the
        forward records whose inverses must still be applied, newest first;
        each inverse is logged as a compensation record whose ``undo_next``
        makes rollback restartable.

        The list is consumed in place: an entry is removed only once its
        inverse is acknowledged, and a logged-but-unacknowledged
        compensation record replaces its forward record at the head.  A
        retry after a DC outage therefore resends the *same* CLR (same
        LSN), so the DC's idempotence test absorbs it — never a second
        inverse for one operation.
        """
        while to_undo:
            head = to_undo[0]
            if isinstance(head, CompensationRecord):
                clr = head
                resend = True
            else:
                if unconfirmed and head.lsn in unconfirmed:
                    # The forward operation's only delivery attempt failed
                    # mid-flight, so whether the DC executed it is unknown —
                    # yet a TC restart's redo WOULD execute it (it is in the
                    # log).  Repeat history first: a resend with the
                    # original LSN either executes it now or is absorbed by
                    # the DC's idempotence test, after which the inverse
                    # below is always valid.
                    forward = self._perform(
                        head.dc_name, head.op, head.lsn, resend=True
                    )
                    self._complete_op(head.lsn)
                    unconfirmed.discard(head.lsn)
                    try:
                        self._expect_ok(forward, head.op)
                    except (CrashedError, ResendExhaustedError):
                        raise
                    except ReproError:
                        # Definitively rejected: it never executed, so there
                        # is nothing to invert — but its record is in the
                        # log, so restart redo must be told to skip it.
                        # Forced immediately: rollback may be running after
                        # the locks were released, so a replay of this
                        # record into a changed state could succeed.
                        self._cancel_record(txn_id, head)
                        self.force_log()
                        to_undo.pop(0)
                        continue
                undo_next = to_undo[1].lsn if len(to_undo) > 1 else NULL_LSN
                assert head.undo is not None
                clr = self.log.append(
                    lambda lsn, r=head, nxt=undo_next: CompensationRecord(
                        lsn=lsn, txn_id=txn_id, op=r.undo, undo_next=nxt, dc_name=r.dc_name
                    ),
                    track_for_lwm=True,
                )
                to_undo[0] = clr
                resend = False
            result = self._perform(clr.dc_name, clr.op, clr.lsn, resend=resend)  # type: ignore[arg-type]
            self._expect_ok(result, clr.op)  # type: ignore[arg-type]
            self._complete_op(clr.lsn)
            to_undo.pop(0)
            self.metrics.incr("tc.undo_ops")
        for table, keys in sorted(versioned_keys.items()):
            self._send_version_cleanup(txn_id, table, keys, promote=False)

    def _cancel_record(self, txn_id: int, record: OpRecord) -> None:
        """Log a cancel marker: ``record``'s operation was definitively
        rejected by its DC.  It never executed, holds no undo obligation,
        and restart redo must skip it (see :class:`CompensationRecord`)."""
        self.log.append(
            lambda lsn: CompensationRecord(
                lsn=lsn,
                txn_id=txn_id,
                op=None,
                dc_name=record.dc_name,
                canceled=record.lsn,
            )
        )
        self.metrics.incr("tc.canceled_ops")

    def _send_version_cleanup(
        self, txn_id: int, table: str, keys: set[Key], promote: bool
    ) -> None:
        route = self._route(table)
        op: LogicalOperation
        if promote:
            op = PromoteVersionsOp(table=table, keys=tuple(sorted(keys)))
        else:
            op = DiscardVersionsOp(table=table, keys=tuple(sorted(keys)))
        record = self.log.append(
            lambda lsn: OpRecord(
                lsn=lsn, txn_id=txn_id, op=op, undo=None, dc_name=route.dc_name
            ),
            track_for_lwm=True,
        )
        result = self._perform(route.dc_name, op, record.lsn)
        self._expect_ok(result, op)
        self._complete_op(record.lsn)
        self.metrics.incr("tc.version_cleanups")

    # -- operations ------------------------------------------------------------------------

    def do_insert(
        self,
        txn: Transaction,
        table: str,
        key: Key,
        value: Value,
        deferred: bool = False,
    ) -> None:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        route = self._route(table)
        self._check_ownership(table, key)
        self._sync_if_conflicting(txn, table, key)
        if self.ownership_guard is None:
            # Record the *attempted* insert before locking/queueing it so a
            # concurrent probe-learned bound can never undercut this key
            # (an attempt that later aborts only leaves the bound an
            # overestimate, which stays safe).
            high = self._insert_high.get(table)
            if high is None or key > high:
                self._insert_high[table] = key
                thigh = self._table_high.get(table)
                if thigh is not None and key > thigh:
                    self._table_high[table] = key
        try:
            self.cc.lock_for_insert(txn, table, key)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        if self._insert_prior(txn, table, key) is not ABSENT:
            raise DuplicateKeyError(table, key)
        try:
            self.cc.note_write(txn, table, key, ABSENT, structural=True)
        except TransactionAborted:
            self._force_abort(txn)
            raise
        op = InsertOp(table=table, key=key, value=value, versioned=route.versioned)
        undo = None if route.versioned else DeleteOp(table=table, key=key)
        self._run_mutation(txn, route, op, undo, deferred=deferred)
        txn.known[(table, key)] = value
        if route.versioned:
            txn.versioned_keys.setdefault(table, set()).add(key)

    def do_update(
        self,
        txn: Transaction,
        table: str,
        key: Key,
        value: Value,
        deferred: bool = False,
    ) -> None:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        route = self._route(table)
        self._check_ownership(table, key)
        self._sync_if_conflicting(txn, table, key)
        try:
            self.cc.lock_for_update(txn, table, key)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        prior = self._known_value(txn, table, key)
        if prior is ABSENT:
            raise NoSuchRecordError(table, key)
        try:
            self.cc.note_write(txn, table, key, prior, structural=False)
        except TransactionAborted:
            self._force_abort(txn)
            raise
        op = UpdateOp(table=table, key=key, value=value, versioned=route.versioned)
        undo = (
            None
            if route.versioned
            else UpdateOp(table=table, key=key, value=prior)
        )
        self._run_mutation(txn, route, op, undo, deferred=deferred)
        txn.known[(table, key)] = value
        if route.versioned:
            txn.versioned_keys.setdefault(table, set()).add(key)

    def do_delete(
        self, txn: Transaction, table: str, key: Key, deferred: bool = False
    ) -> None:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        route = self._route(table)
        self._check_ownership(table, key)
        self._sync_if_conflicting(txn, table, key)
        try:
            self.cc.lock_for_delete(txn, table, key)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        prior = self._known_value(txn, table, key)
        if prior is ABSENT:
            raise NoSuchRecordError(table, key)
        try:
            self.cc.note_write(txn, table, key, prior, structural=True)
        except TransactionAborted:
            self._force_abort(txn)
            raise
        op = DeleteOp(table=table, key=key, versioned=route.versioned)
        undo = (
            None
            if route.versioned
            else InsertOp(table=table, key=key, value=prior)
        )
        self._run_mutation(txn, route, op, undo, deferred=deferred)
        txn.known[(table, key)] = ABSENT
        if route.versioned:
            txn.versioned_keys.setdefault(table, set()).add(key)

    def do_increment(
        self,
        txn: Transaction,
        table: str,
        key: Key,
        delta: float,
        deferred: bool = False,
    ) -> None:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        route = self._route(table)
        self._check_ownership(table, key)
        self._sync_if_conflicting(txn, table, key)
        try:
            self.cc.lock_for_update(txn, table, key)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        prior = self._known_value(txn, table, key)
        if prior is ABSENT:
            raise NoSuchRecordError(table, key)
        if not isinstance(prior, (int, float)) or isinstance(prior, bool):
            raise ReproError(f"record {key!r} of {table!r} is not numeric")
        try:
            self.cc.note_write(txn, table, key, prior, structural=False)
        except TransactionAborted:
            self._force_abort(txn)
            raise
        op = IncrementOp(
            table=table, key=key, delta=delta, versioned=route.versioned
        )
        # Pure logical undo: no before-image, just the inverse delta.
        undo = None if route.versioned else IncrementOp(
            table=table, key=key, delta=-delta
        )
        self._run_mutation(txn, route, op, undo, deferred=deferred)
        txn.known[(table, key)] = prior + delta
        if route.versioned:
            txn.versioned_keys.setdefault(table, set()).add(key)

    def do_read(self, txn: Transaction, table: str, key: Key) -> Optional[Value]:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        try:
            value = self.cc.read(txn, table, key)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        return None if value is ABSENT else value

    def do_scan(
        self,
        txn: Transaction,
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, Value]]:
        if self._crashed:
            self._check_up()
        if txn.state is not TransactionState.ACTIVE:
            txn._check_active()
        if self._batch_ops and txn.in_flight:
            # A scan reads through the DC; accumulated (unsent) writes of
            # this very transaction must be visible to it — flush first.
            self.sync_pipeline(txn)
        try:
            results = self.cc.scan(txn, table, low, high, limit)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise
        self.metrics.incr("tc.scans")
        return results

    def read_other(
        self, table: str, key: Key, flavor: ReadFlavor = ReadFlavor.READ_COMMITTED
    ) -> Optional[Value]:
        """Cross-TC read (Section 6.2): read-committed via versions, or
        dirty.  No locks, never blocks, usable outside any transaction.

        READ_COMMITTED is only meaningful on *versioned* tables (the DC
        keeps a before-version there); on a non-versioned table it
        degrades to dirty-read semantics, exactly as Section 6.2.1 says
        plain shared access provides.
        """
        self._check_up()
        if flavor is ReadFlavor.OWN:
            raise ReproError("read_other is for READ_COMMITTED or DIRTY flavors")
        route = self._route(table)
        op = ReadOp(table=table, key=key, flavor=flavor)
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        if result.status is OpStatus.NOT_FOUND:
            return None
        self._expect_ok(result, op)
        return result.value

    def scan_other(
        self,
        table: str,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
        flavor: ReadFlavor = ReadFlavor.READ_COMMITTED,
    ) -> list[tuple[Key, Value]]:
        """Cross-TC range read; never blocks, sees committed (or dirty) data."""
        self._check_up()
        views = self.read_range_raw(table, low, high, limit, flavor)
        return [view.as_tuple() for view in views]

    # -- snapshot reads (Section 6.3 extension) ----------------------------------------------

    def begin_snapshot(self, allow_degraded: bool = False) -> "SnapshotReader":
        """Capture a per-DC commit-sequence watermark and return a reader.

        Snapshot reads never block and never lock; each DC's reads are
        transaction-consistent as of its watermark.  Watermarks of
        different DCs are captured independently — a cross-DC snapshot is
        per-DC consistent, not globally consistent (the extension stops
        where the paper's "we also see potential" stops).

        With ``allow_degraded=True`` an unreachable DC is simply left out
        of the snapshot: reads of healthy DCs proceed, reads routed to the
        missing DC raise :class:`ComponentUnavailableError`.  Otherwise an
        unreachable DC fails the whole call within the retry budget.
        """
        self._check_up()
        from repro.common.api import WatermarkReply, WatermarkRequest

        policy = self.config.retry_policy()
        watermarks: dict[str, int] = {}
        for name, channel in self._channels.items():
            reply = None
            attempts = 0
            waited_ms = 0.0
            down = channel.dc.crashed or (
                channel.faults is not None and channel.faults.partitioned(name)
            )
            while reply is None and not down and not policy.exhausted(attempts, waited_ms):
                reply = channel.request(WatermarkRequest(tc_id=self.tc_id))
                attempts += 1
                if reply is None:
                    down = channel.dc.crashed
                    backoff = policy.backoff_ms(attempts)
                    waited_ms += backoff
                    channel.sim_time_ms += backoff
            if isinstance(reply, WatermarkReply):
                watermarks[name] = reply.watermark
                continue
            if allow_degraded:
                self.metrics.incr("tc.degraded_snapshots")
                continue
            if down:
                raise ComponentUnavailableError(f"DC {name}", attempts, waited_ms)
            raise ResendExhaustedError(f"watermark:{name}", name, attempts, waited_ms)
        self.metrics.incr("tc.snapshots")
        return SnapshotReader(self, watermarks)

    def read_snapshot(self, table: str, key: Key, as_of: int) -> Optional[Value]:
        route = self._route(table)
        op = ReadOp(table=table, key=key, flavor=ReadFlavor.SNAPSHOT, as_of=as_of)
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        if result.status is OpStatus.NOT_FOUND:
            return None
        self._raise_if_snapshot_too_old(result, as_of)
        self._expect_ok(result, op)
        return result.value

    def scan_snapshot(
        self,
        table: str,
        as_of: int,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        route = self._route(table)
        op = RangeReadOp(
            table=table,
            low=low,
            high=high,
            limit=limit,
            flavor=ReadFlavor.SNAPSHOT,
            as_of=as_of,
        )
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        self._raise_if_snapshot_too_old(result, as_of)
        self._expect_ok(result, op)
        return [view.as_tuple() for view in result.records]

    @staticmethod
    def _raise_if_snapshot_too_old(result: OpResult, as_of: int) -> None:
        if result.status is OpStatus.ERROR and "retention" in result.message:
            from repro.common.errors import SnapshotTooOldError

            try:
                floor = int(result.message.rsplit(" ", 1)[-1])
            except ValueError:
                floor = -1
            raise SnapshotTooOldError(as_of, floor)

    # -- helpers shared with the protocols ---------------------------------------------------

    def table_high(self, table: str) -> Optional[Key]:
        """Upper bound on every key in ``table``, or None when unknown.

        Only available on the fast-path family (undo cache on) with this
        TC as sole writer; the gap-lock protocol uses it to prove "no
        successor exists" for fresh-key inserts without a probe round trip.
        """
        if self._undo_cache is None or self.ownership_guard is not None:
            return None
        return self._table_high.get(table)

    def probe_keys(
        self,
        table: str,
        after: Optional[Key],
        count: int,
        until: Optional[Key] = None,
        inclusive: bool = False,
    ) -> list[Key]:
        """Speculative fetch-ahead probe (unlocked, unlogged)."""
        route = self._route(table)
        op = ProbeNextKeysOp(
            table=table, after=after, count=count, until=until, inclusive=inclusive
        )
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        self._expect_ok(result, op)
        self.metrics.incr("tc.probes")
        keys = list(result.keys)
        if (
            not keys
            and until is None
            and after is not None
            and self._undo_cache is not None
            and self.ownership_guard is None
        ):
            # Authoritative emptiness: the DC just attested that no key
            # exists above ``after``.  Raise the bound to cover our own
            # batched-but-unsent inserts (``_insert_high``), which the DC
            # cannot have seen yet.
            bound = after
            pending = self._insert_high.get(table)
            if pending is not None and pending > bound:
                bound = pending
            self._table_high[table] = bound
        return keys

    def read_range_raw(
        self,
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
        flavor: ReadFlavor,
        low_exclusive: bool = False,
    ) -> tuple[RecordView, ...]:
        route = self._route(table)
        op = RangeReadOp(
            table=table,
            low=low,
            high=high,
            limit=limit,
            flavor=flavor,
            low_exclusive=low_exclusive,
        )
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        self._expect_ok(result, op)
        return result.records

    def _check_ownership(self, table: str, key: Key) -> None:
        """Section 6: a TC may only update keys in its own partition —
        that disjointness is what lets multiple TCs share a DC without the
        DC ever seeing conflicting concurrent operations."""
        if self.ownership_guard is not None and not self.ownership_guard(table, key):
            from repro.common.errors import OwnershipError

            raise OwnershipError(
                f"TC {self.tc_id} does not own key {key!r} of table {table!r}"
            )

    def _insert_prior(self, txn: Transaction, table: str, key: Key) -> object:
        """The duplicate-check value for an insert — optimistically ABSENT
        on the composed fast path.

        An insert is the one mutation whose undo needs no before-image: a
        successful insert was provably inserted into absence, so its
        inverse is always a bare delete.  The read-before-write therefore
        serves only the duplicate check — and with batching on, the DC's
        own duplicate rejection at flush time (a per-op semantic
        rejection, surfacing as the same :class:`DuplicateKeyError`)
        covers that check without the round trip.  Anything the TC
        actually knows (transaction- or cache-local) still answers first,
        keeping the error synchronous whenever knowledge is at hand.
        """
        if (
            self._batch_ops
            and self._undo_cache is not None
            and not self.cc.needs_insert_prior
        ):
            known = txn.known.get((table, key))
            if known is not None:
                return known
            hit = self._undo_cache.get((table, key), None)
            if hit is not None:
                self._cache_hits_slot.value += 1
                txn.known[(table, key)] = hit
                return hit
            return ABSENT
        return self._known_value(txn, table, key)

    def _known_value(self, txn: Transaction, table: str, key: Key) -> object:
        """Value under our lock, reading through to the DC once if unknown.

        This read-before-write is how the unbundled TC obtains complete
        undo information at log-append time (see module docstring).  With
        :attr:`TcConfig.undo_cache` on, values this TC learned in earlier
        transactions are served from the undo-info cache instead — the
        caller already holds the covering lock, and this TC is the sole
        writer of its keys, so a cached committed value is current.
        """
        cached = txn.known.get((table, key))
        if cached is not None:
            return cached
        cache = self._undo_cache
        if cache is not None:
            hit = cache.get((table, key), None)
            if hit is not None:
                self._cache_hits_slot.value += 1
                txn.known[(table, key)] = hit
                return hit
            self._cache_misses_slot.value += 1
        route = self._route(table)
        op = ReadOp(table=table, key=key, flavor=ReadFlavor.OWN)
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        self._undo_reads_slot.value += 1
        if result.status is OpStatus.NOT_FOUND:
            txn.known[(table, key)] = ABSENT
            self._cache_store(table, key, ABSENT)
            return ABSENT
        self._expect_ok(result, op)
        txn.known[(table, key)] = result.value
        self._cache_store(table, key, result.value)
        return result.value

    def _cc_fetch(self, table: str, key: Key) -> object:
        """Lock-free policy read: one DC round trip, value or ``ABSENT``.

        Deliberately bypasses ``txn.known`` and the undo-info cache —
        both feed undo logging and may only hold values learned under a
        covering lock; a lock-free read caching there would let an abort
        "restore" a value that was never the committed state.
        """
        route = self._route(table)
        op = ReadOp(table=table, key=key, flavor=ReadFlavor.OWN)
        op_id = self.log.issue_read_id()
        result = self._perform(route.dc_name, op, op_id)
        self._complete_op(op_id)
        if result.status is OpStatus.NOT_FOUND:
            return ABSENT
        self._expect_ok(result, op)
        return result.value

    # -- the undo-info cache (docs/architecture.md §9.2) -------------------------------------

    def _cache_store(self, table: str, key: Key, value: object) -> None:
        """Remember a value this TC learned under a lock it held.

        Only keys this TC owns are cached (with an ownership guard
        installed, a foreign TC may mutate unowned keys behind our back).
        FIFO eviction at ``undo_cache_size``.
        """
        cache = self._undo_cache
        if cache is None:
            return
        if self.ownership_guard is not None and not self.ownership_guard(table, key):
            return
        cache[(table, key)] = value
        if len(cache) > self.config.undo_cache_size:
            cache.popitem(last=False)

    def _cache_committed(self, txn: Transaction) -> None:
        """Write-through at commit: everything the transaction knows under
        its locks is now the committed state (called before lock release)."""
        if self._undo_cache is None:
            return
        for (table, key), value in txn.known.items():
            self._cache_store(table, key, value)

    def _uncache_txn(self, txn: Transaction) -> None:
        """Drop every key the transaction touched (abort/ambiguity paths)."""
        cache = self._undo_cache
        if cache is None:
            return
        for table_key in txn.known:
            cache.pop(table_key, None)
        for record in txn.op_records:
            op = record.op
            if op is not None:
                cache.pop((op.table, getattr(op, "key", None)), None)
        self.metrics.incr("tc.undo_cache_invalidations")

    def _uncache_dc(self, dc_name: str) -> None:
        """Drop every entry routed to ``dc_name`` (DC reset/restart: its
        cached state was lost and is being rebuilt by redo)."""
        cache = self._undo_cache
        if cache is None:
            return
        tables = {
            table for table, route in self._routes.items() if route.dc_name == dc_name
        }
        for table_key in [tk for tk in cache if tk[0] in tables]:
            del cache[table_key]
        for table in tables:
            # Redo rebuilds the same key set, so a retained bound would in
            # fact stay a valid overestimate — but the bound is volatile
            # hint state, so it is re-learned rather than reasoned about.
            self._table_high.pop(table, None)
        self.metrics.incr("tc.undo_cache_invalidations")

    def _run_mutation(
        self,
        txn: Transaction,
        route: _TableRoute,
        op: LogicalOperation,
        undo: Optional[LogicalOperation],
        deferred: bool = False,
    ) -> None:
        record = self.log.append(
            lambda lsn: OpRecord(
                lsn=lsn, txn_id=txn.txn_id, op=op, undo=undo, dc_name=route.dc_name
            ),
            track_for_lwm=True,
        )
        if self._batch_ops:
            # Fast path: accumulate; the envelope flushes at sync time
            # (commit, a conflicting operation, a scan) or when the
            # transaction's accumulation reaches batch_max_ops.  Nothing is
            # on the wire yet — `in_flight` IS the pending envelope.
            txn.op_records.append(record)  # type: ignore[arg-type]
            txn.in_flight[(op.table, getattr(op, "key", None))] = record  # type: ignore[index]
            self._deferred_slot.value += 1
            self._mutations_slot.value += 1
            if len(txn.in_flight) >= self.config.batch_max_ops:
                self.sync_pipeline(txn)
            return
        if deferred:
            txn.op_records.append(record)  # type: ignore[arg-type]
            # Pipelining: post without waiting.  The TC validated the
            # operation under its locks, so the (eventual) result is known
            # to be OK; the reply is collected at the next sync.
            channel = self._channels[route.dc_name]
            channel.post(
                PerformOperation(
                    tc_id=self.tc_id,
                    op_id=record.lsn,
                    op=op,
                    eosl=self.log.eosl,
                )
            )
            txn.in_flight[(op.table, getattr(op, "key", None))] = record  # type: ignore[index]
            self._deferred_slot.value += 1
        else:
            try:
                result = self._perform(route.dc_name, op, record.lsn)
            except (CrashedError, ResendExhaustedError):
                # The record is logged but the DC's fate for it is unknown
                # (a lost reply means it may well have executed — and a TC
                # restart's redo would execute it even if it didn't).  It
                # must therefore stay on the undo chain, flagged so that
                # rollback repeats history before inverting it.
                txn.op_records.append(record)  # type: ignore[arg-type]
                txn.unconfirmed.add(record.lsn)
                raise
            self._complete_op(record.lsn)
            # Only operations that actually executed enter the undo chain;
            # a DC-side failure (e.g. page overflow on a fixed structure)
            # must not leave an inverse behind for rollback to misapply.
            try:
                self._expect_ok(result, op)
            except (CrashedError, ResendExhaustedError):
                raise
            except ReproError:
                self._cancel_record(txn.txn_id, record)
                raise
            txn.op_records.append(record)  # type: ignore[arg-type]
        self._mutations_slot.value += 1

    def _sync_if_conflicting(self, txn: Transaction, table: str, key: Key) -> None:
        """Never let two operations on one key be in flight together —
        the TC's core obligation (Section 1.2) extends to its own pipeline."""
        if (table, key) in txn.in_flight:
            self.sync_pipeline(txn)

    def sync_pipeline(self, txn: Transaction) -> None:
        """Deliver queued operations (possibly reordered by the channel),
        collect replies, and resend anything the channel lost.

        With :attr:`TcConfig.batch_ops` on, the accumulated operations go
        out as one :class:`BatchedPerform` envelope per DC instead."""
        if not txn.in_flight:
            return
        if self._batch_ops:
            groups: dict[str, tuple[list, list]] = {}
            for table_key, record in txn.in_flight.items():
                keys, records = groups.setdefault(record.dc_name, ([], []))
                keys.append(table_key)
                records.append(record)
            # Pipelined flush (process transport): pre-send every DC's
            # first-attempt envelope before collecting any reply, so N DC
            # processes execute concurrently while this one TC thread
            # waits.  Out-of-order completion is §4.2.1-safe: per-op ids
            # correlate replies, resends are absorbed by idempotence.  A
            # presend whose reply is never collected (an earlier group
            # failed) is indistinguishable from a lost reply — the records
            # stay in flight and a later sync resends the same LSNs.
            presends: dict[str, object] = {}
            if self.config.pipeline_flush and len(groups) > 1:
                for dc_name, (_keys, records) in groups.items():
                    channel = self._channels[dc_name]
                    if not channel.supports_async or channel.dc.crashed:
                        continue
                    presends[dc_name] = channel.request_async(
                        self._batch_envelope(records, resend=False)
                    )
            for dc_name, (keys, records) in groups.items():
                self._send_batch(
                    txn, dc_name, records, presend=presends.pop(dc_name, None)
                )
                # Only on full success: a transport failure leaves the
                # records in flight so a later sync (rollback repeats
                # history) resends the same LSNs.
                for table_key in keys:
                    txn.in_flight.pop(table_key, None)
            self._syncs_slot.value += 1
            return
        acked: set[Lsn] = set()
        for dc_name in {record.dc_name for record in txn.in_flight.values()}:
            channel = self._channels[dc_name]
            for reply in channel.pump():
                if isinstance(reply, OperationReply) and reply.result is not None:
                    if reply.result.ok:
                        acked.add(reply.op_id)
        for (table, key), record in list(txn.in_flight.items()):
            if record.lsn not in acked:
                assert record.op is not None
                result = self._perform(record.dc_name, record.op, record.lsn, resend=True)
                self._complete_op(record.lsn)
                try:
                    self._expect_ok(result, record.op)
                except (CrashedError, ResendExhaustedError):
                    raise
                except ReproError:
                    # the deferred op never executed: drop it from the
                    # undo chain (and tell restart redo to skip it) before
                    # surfacing the failure
                    if record in txn.op_records:
                        txn.op_records.remove(record)
                    self._cancel_record(txn.txn_id, record)
                    txn.in_flight.clear()
                    raise
            else:
                self._complete_op(record.lsn)
        txn.in_flight.clear()
        self._syncs_slot.value += 1

    def _guard_abort(self, txn: Transaction, fn, *args: object) -> None:
        """Run a locking step; on deadlock or lock timeout, roll back —
        a transaction must never survive holding a partial lock set."""
        try:
            fn(*args)
        except (TransactionAborted, LockTimeoutError):
            self._force_abort(txn)
            raise

    def _force_abort(self, txn: Transaction) -> None:
        if txn.state is not TransactionState.ACTIVE:
            return
        try:
            self.abort(txn)
        except ReproError:
            # Rollback could not complete (typically: the DC is down, so
            # inverse operations cannot be delivered).  Release the locks
            # so the system makes progress, but remember the transaction —
            # its compensation is retried when the DC comes back (and a TC
            # restart would roll it back as an ordinary loser anyway).
            self.locks.release_all(txn.txn_id)
            txn.state = TransactionState.ABORTED
            with self._admin:
                self._zombie_rollbacks.append(txn)
            self.metrics.incr("tc.zombie_rollbacks")

    def _retry_zombie_rollbacks(self) -> None:
        """Finish rollbacks that were interrupted by a DC outage."""
        with self._admin:
            zombies, self._zombie_rollbacks = self._zombie_rollbacks, []
        for txn in zombies:
            try:
                self._drive_rollback(txn)
                # The inverses just changed DC state for keys whose locks
                # were released long ago — drop anything cached for them
                # (a concurrent reader may have re-cached since the abort).
                self._uncache_txn(txn)
                # Settled at last: bump the keys' stamps (any lock-free
                # read of the mid-rollback bytes must fail validation) and
                # free the writer registry for new writers.
                self.cc.on_abort_settled(txn)
                self.log.append(
                    lambda lsn, t=txn.txn_id: TxnEndRecord(lsn=lsn, txn_id=t)
                )
                self.metrics.incr("tc.zombie_rollbacks_completed")
            except ReproError:
                with self._admin:
                    self._zombie_rollbacks.append(txn)  # still unreachable

    def _retry_zombie_completions(self) -> None:
        """Finish post-commit version cleanup interrupted by a DC outage."""
        with self._admin:
            zombies, self._zombie_completions = self._zombie_completions, []
        for txn in zombies:
            try:
                for table, keys in sorted(txn.versioned_keys.items()):
                    self._send_version_cleanup(txn.txn_id, table, keys, promote=True)
                self.log.append(
                    lambda lsn, t=txn.txn_id: TxnEndRecord(lsn=lsn, txn_id=t)
                )
                self.metrics.incr("tc.zombie_completions_finished")
            except ReproError:
                with self._admin:
                    self._zombie_completions.append(txn)  # still unreachable

    def retry_pending(self) -> None:
        """Re-drive interrupted rollbacks/cleanups (the supervisor's heal
        hook; also runs automatically on DC restart prompts)."""
        self._check_up()
        self._retry_zombie_rollbacks()
        self._retry_zombie_completions()

    def pending_zombies(self) -> int:
        with self._admin:
            return len(self._zombie_rollbacks) + len(self._zombie_completions)

    @staticmethod
    def _expect_ok(result: OpResult, op: LogicalOperation) -> None:
        if result.ok:
            return
        if result.status is OpStatus.DUPLICATE:
            raise DuplicateKeyError(op.table, getattr(op, "key", None))
        if result.status is OpStatus.NOT_FOUND:
            raise NoSuchRecordError(op.table, getattr(op, "key", None))
        raise ReproError(f"operation failed: {result.message} ({op!r})")

    # -- messaging ---------------------------------------------------------------------------------

    def _await_redo_quiesce(self, dc_name: str) -> None:
        """Stall ordinary dispatch to a DC whose redo stream is replaying.

        After a DC restart, its record state is rebuilt by this TC's redo
        resend (:meth:`_on_dc_restart`).  An operation slipping in
        mid-rebuild would observe committed records as absent — and a
        read-before-write would capture that absence as undo information,
        so a later abort's repeat-history undo would erase committed data.
        The thread running the redo itself passes through (redo resends,
        zombie rollbacks and completions all use :meth:`_perform`).
        """
        if not self._dc_redo:
            return
        me = threading.get_ident()
        if _sched.task_active():
            # Cooperative mode: park at the scheduler (marked blocked on
            # the redo window) instead of a real condition wait; the redo
            # thread notifies when the window closes.
            while True:
                with self._redo_cv:
                    if self._dc_redo.get(dc_name) in (None, me):
                        return
                _sched.maybe_yield(
                    YieldPoint.DC_REDO_WAIT, dc_name, resource=f"redo:{dc_name}"
                )
            return
        with self._redo_cv:
            while self._dc_redo.get(dc_name) not in (None, me):
                self._redo_cv.wait(timeout=1.0)

    def _perform(
        self,
        dc_name: str,
        op: LogicalOperation,
        op_id: Lsn,
        resend: bool = False,
        redo: bool = False,
    ) -> OpResult:
        """Send with resend-until-acknowledged (exactly-once end to end).

        Resends follow the TC's :class:`~repro.common.config.RetryPolicy`:
        exponential backoff charged to simulated channel time (never
        slept), bounded by both an attempt count and a per-operation
        timeout budget.  A DC known to be down — crashed, or behind an
        unhealed partition — fails fast with
        :class:`ComponentUnavailableError` instead of burning the budget;
        an exhausted budget raises :class:`ResendExhaustedError` so the
        caller (or supervisor) can tell "slow" from "gone".
        """
        self._await_redo_quiesce(dc_name)
        channel = self._channels[dc_name]
        policy = self.config.retry_policy()
        attempts = 0
        waited_ms = 0.0
        if self.tracer.enabled:
            # The op id *is* the trace context: DC-side spans started later
            # (e.g. redo after a crash) can recover this request's trace.
            self.tracer.bind_request(op_id)
        while not policy.exhausted(attempts, waited_ms):
            # The TC itself may have been crashed mid-operation (e.g. by a
            # fault during a DC-prompted log force) — stop immediately.
            self._check_up()
            # Re-check per attempt: a DC crash can open a redo window while
            # this operation is mid-retry, and its resend must not land on
            # the rebuilt DC before redo replays what came before it.
            self._await_redo_quiesce(dc_name)
            if channel.dc.crashed or (
                channel.faults is not None and channel.faults.partitioned(dc_name)
            ):
                raise ComponentUnavailableError(f"DC {dc_name}", attempts, waited_ms)
            message = PerformOperation(
                tc_id=self.tc_id,
                op_id=op_id,
                op=op,
                resend=resend or attempts > 0,
                eosl=self.log.eosl,
                redo=redo,
            )
            reply = channel.request(message)
            attempts += 1
            if reply is None:
                if channel.dc.crashed:
                    raise ComponentUnavailableError(f"DC {dc_name}", attempts, waited_ms)
                backoff = policy.backoff_ms(attempts)
                waited_ms += backoff
                channel.sim_time_ms += backoff
                self.metrics.incr("tc.resends")
                continue
            assert isinstance(reply, OperationReply)
            assert reply.result is not None
            return reply.result
        raise ResendExhaustedError(op_id, dc_name, attempts, waited_ms)

    def _batch_envelope(
        self, records: list[OpRecord], resend: bool
    ) -> BatchedPerform:
        return BatchedPerform(
            tc_id=self.tc_id,
            ops=tuple(
                PerformOperation(
                    tc_id=self.tc_id,
                    op_id=record.lsn,
                    op=record.op,
                    resend=resend,
                )
                for record in records
            ),
            eosl=self.log.eosl,
        )

    def _send_batch(
        self,
        txn: Transaction,
        dc_name: str,
        records: list[OpRecord],
        presend: Optional[object] = None,
    ) -> None:
        """Ship accumulated operations to one DC in a single envelope.

        Retries resend the *whole remaining* envelope with the same per-op
        LSNs (``resend=True``), which the DC's per-op abLSN idempotence
        test absorbs — exactly the unbatched contract, minus round trips.
        A semantic rejection of one operation is handled per-op, like the
        unbatched sync path: the record leaves the undo chain, a cancel
        marker tells restart redo to skip it, and the failure surfaces.

        ``presend`` is an already-dispatched first attempt (a pipelined
        reply future from :meth:`sync_pipeline`'s concurrent flush); the
        first loop iteration awaits it instead of sending again.
        """
        self._await_redo_quiesce(dc_name)
        channel = self._channels[dc_name]
        policy = self._retry_policy
        attempts = 0
        waited_ms = 0.0
        pending: dict[Lsn, OpRecord] = {r.lsn: r for r in records}
        with self.tracer.span(
            "tc.batch_flush", component=self.name, dc=dc_name, ops=len(records)
        ):
            while pending:
                if policy.exhausted(attempts, waited_ms):
                    raise ResendExhaustedError(
                        min(pending), dc_name, attempts, waited_ms
                    )
                self._check_up()
                self._await_redo_quiesce(dc_name)
                if channel.dc.crashed or (
                    channel.faults is not None and channel.faults.partitioned(dc_name)
                ):
                    raise ComponentUnavailableError(
                        f"DC {dc_name}", attempts, waited_ms
                    )
                if presend is not None:
                    reply = channel.finish_async(presend)
                    presend = None
                else:
                    reply = channel.request(
                        self._batch_envelope(list(pending.values()), attempts > 0)
                    )
                attempts += 1
                if reply is None:
                    if channel.dc.crashed:
                        raise ComponentUnavailableError(
                            f"DC {dc_name}", attempts, waited_ms
                        )
                    backoff = policy.backoff_ms(attempts)
                    waited_ms += backoff
                    channel.sim_time_ms += backoff
                    self.metrics.incr("tc.resends")
                    continue
                assert isinstance(reply, BatchedReply)
                # One log-mutex bracket completes the whole envelope (the
                # finally also covers a semantic rejection mid-envelope).
                completed: list[Lsn] = []
                try:
                    for sub in reply.replies:
                        record = pending.pop(sub.op_id, None)
                        if record is None:
                            continue  # a duplicated reply; already confirmed
                        completed.append(record.lsn)
                        assert sub.result is not None and record.op is not None
                        try:
                            self._expect_ok(sub.result, record.op)
                        except (CrashedError, ResendExhaustedError):
                            raise
                        except ReproError:
                            # The op never executed: drop it from the undo
                            # chain, tell restart redo to skip it, drop any
                            # cached knowledge of the key, surface the
                            # failure.
                            if record in txn.op_records:
                                txn.op_records.remove(record)
                            self._cancel_record(txn.txn_id, record)
                            if self._undo_cache is not None:
                                self._undo_cache.pop(
                                    (record.op.table, getattr(record.op, "key", None)),
                                    None,
                                )
                            txn.in_flight.clear()
                            raise
                finally:
                    if completed:
                        self._complete_ops(completed)

    def _request_acked(self, dc_name: str, message) -> object:
        """Deliver a control message reliably: resend until a reply arrives.

        Contract-state control messages (``RestartBegin``,
        ``EndOfStableLog`` at restart) must not be silently lost on a lossy
        channel — the DC acks them and this helper retries under the same
        policy envelope as :meth:`_perform`.  The messages themselves are
        idempotent, so a reply lost after delivery just costs a resend.
        """
        channel = self._channels[dc_name]
        policy = self.config.retry_policy()
        attempts = 0
        waited_ms = 0.0
        while not policy.exhausted(attempts, waited_ms):
            if channel.dc.crashed or (
                channel.faults is not None and channel.faults.partitioned(dc_name)
            ):
                raise ComponentUnavailableError(f"DC {dc_name}", attempts, waited_ms)
            reply = channel.request(message)
            attempts += 1
            if reply is not None:
                return reply
            if channel.dc.crashed:
                raise ComponentUnavailableError(f"DC {dc_name}", attempts, waited_ms)
            backoff = policy.backoff_ms(attempts)
            waited_ms += backoff
            channel.sim_time_ms += backoff
            self.metrics.incr("tc.resends")
        raise ResendExhaustedError(0, dc_name, attempts, waited_ms)

    def _complete_op(self, op_id: Lsn) -> None:
        if self.tracer.enabled:
            self.tracer.release_request(op_id)
        lwm = self.log.complete_op(op_id)
        self._completions_since_lwm += 1
        if self._completions_since_lwm >= self.config.lwm_interval:
            self._completions_since_lwm = 0
            self.broadcast_lwm(lwm)

    def _complete_ops(self, op_ids: list[Lsn]) -> None:
        """Batch form of :meth:`_complete_op`: one tracker bracket for a
        whole reply envelope."""
        if self.tracer.enabled:
            for op_id in op_ids:
                self.tracer.release_request(op_id)
        lwm = self.log.complete_ops(op_ids)
        self._completions_since_lwm += len(op_ids)
        if self._completions_since_lwm >= self.config.lwm_interval:
            self._completions_since_lwm = 0
            self.broadcast_lwm(lwm)

    def broadcast_lwm(self, lwm: Optional[Lsn] = None) -> None:
        """Ship the low-water mark to every DC (Section 5.1.2)."""
        lwm = lwm if lwm is not None else self.log.lwm
        if lwm <= NULL_LSN:
            return
        redo_bypass = threading.get_ident()
        for dc_name, channel in self._channels.items():
            if self._dc_redo.get(dc_name, redo_bypass) != redo_bypass:
                # The LWM says "replies received", but the replies came
                # from the pre-crash incarnation: advancing a freshly
                # rebuilt page's abLSN low water past still-unreplayed
                # operations would make redo dedupe them and lose their
                # effects.  Skip the DC until its redo window closes (the
                # redo thread itself broadcasts when it is done).
                self.metrics.incr("tc.lwm_held_for_redo")
                continue
            channel.request(LowWaterMark(tc_id=self.tc_id, lwm=lwm))
        self.metrics.incr("tc.lwm_broadcasts")

    def force_log(self) -> Lsn:
        """Force the log; the new EOSL piggybacks on subsequent operations
        (checkpoint and restart still push it explicitly)."""
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            # A crash here loses the volatile log tail — the classic
            # "commit record never reached the disk" failure.
            self.faults.hit(FaultPoint.TC_LOG_FORCE, self.name)
        return self.log.force()

    def broadcast_eosl(self) -> Lsn:
        """Explicitly push the current EOSL to every DC (causality, WAL)."""
        eosl = self.log.eosl
        for channel in self._channels.values():
            channel.request(EndOfStableLog(tc_id=self.tc_id, eosl=eosl))
        return eosl

    def _force_through(self, lsn: Lsn) -> Lsn:
        """DC-prompted log force (the system-transaction causality gate)."""
        if self.log.needs_force(lsn):
            self.metrics.incr("tc.prompted_forces")
            return self.force_log()
        return self.log.eosl

    # -- checkpointing (contract termination, Section 4.2) --------------------------------------------

    def checkpoint(self) -> bool:
        """Advance the redo scan start point; False when a DC is blocked."""
        self._check_up()
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.TC_CHECKPOINT, self.name)
        if _sched.task_active():
            # Fixed target (like TC_LOG_FORCE): the TC's allocated name
            # varies across kernels, and event streams must be a pure
            # function of the seed.
            _sched.maybe_yield(YieldPoint.TC_CHECKPOINT, "tc")
        self.force_log()
        self.broadcast_eosl()
        self.broadcast_lwm()
        candidate = self.log.lwm + 1
        if candidate <= self._rssp:
            self._truncate_log()
            return True
        for name, channel in self._channels.items():
            reply = channel.request(
                CheckpointRequest(tc_id=self.tc_id, new_rssp=candidate)
            )
            if not isinstance(reply, CheckpointReply) or reply.granted_rssp < candidate:
                self.metrics.incr("tc.checkpoint_blocked")
                return False
        self._rssp = candidate
        self.log.append(
            lambda lsn: CheckpointRecord(lsn=lsn, txn_id=0, rssp=candidate)
        )
        self.force_log()
        self.metrics.incr("tc.checkpoints")
        self._truncate_log()
        return True

    def _truncate_log(self) -> int:
        """Reclaim stable log space below the checkpoint (contract
        termination's whole point): replay cost — and with it restart
        time — stays proportional to the live tail, not history.

        Crash-safe at any point: truncation only ever drops records redo
        and undo provably no longer need (:meth:`TcLog.truncation_point`),
        so a crash before, during or after it merely replays more or
        fewer records.
        """
        if not self.config.truncate_log or self._rssp <= NULL_LSN:
            return 0
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            # A crash here models dying between the checkpoint record
            # force and the space reclaim — the log keeps its prefix and
            # restart simply replays from the (already stable) RSSP.
            self.faults.hit(FaultPoint.TC_TRUNCATE, self.name)
        if _sched.task_active():
            _sched.maybe_yield(YieldPoint.TC_TRUNCATE, "tc")
        point = self.log.truncation_point(self._rssp)
        dropped = self.log.truncate_below(point)
        if dropped:
            self.metrics.incr("tc.log_truncations")
        return dropped

    def _on_rssp_hint(self, dc_name: str, lsn: Lsn) -> None:
        """Spontaneous contract termination (Section 4.2.1): a DC reports
        that everything below ``lsn`` is stable there.  The redo scan start
        point may advance once *every* attached DC has hinted at least that
        far (the RSSP is a global minimum)."""
        with self._admin:
            self._rssp_hints[dc_name] = max(self._rssp_hints.get(dc_name, 0), lsn)
            if len(self._rssp_hints) < len(self._channels):
                return
            candidate = min(self._rssp_hints.values())
            if candidate <= self._rssp:
                return
            self._rssp = candidate
            self.metrics.incr("tc.rssp_hint_advances")
        self.log.append(
            lambda l: CheckpointRecord(lsn=l, txn_id=0, rssp=candidate)
        )
        self.force_log()
        self._truncate_log()

    @property
    def rssp(self) -> Lsn:
        return self._rssp

    # -- failure handling --------------------------------------------------------------------------------

    def crash(self) -> int:
        """Lose all volatile state: log tail, lock table, live transactions.

        Returns the number of log records lost (they are gone forever; the
        DC-reset protocol of Section 5.3.2 must erase their effects)."""
        self._crashed = True
        lost = self.log.crash()
        self.locks.clear()
        # CC stamps / writer registry / before-images are volatile exactly
        # like the lock table; restart re-learns everything it needs.
        self.cc.clear()
        with self._admin:
            self._active.clear()
            self._zombie_rollbacks.clear()
            self._zombie_completions.clear()
        if self._undo_cache is not None:
            # Volatile, and the crash may have lost logged-but-unstable
            # operations whose effects the cached values reflect.
            self._undo_cache.clear()
        self._table_high.clear()
        self._insert_high.clear()
        self._completions_since_lwm = 0
        self.metrics.incr("tc.crashes")
        for listener in list(self.on_crash):
            listener(self.name, "tc")
        return lost

    def restart(self, reset_mode: Optional[ResetMode] = None) -> dict[str, int]:
        """Recover from a TC crash (Section 5.3.2 "TC Failure")."""
        from repro.tc.recovery import TcRestart

        try:
            stats = TcRestart(self).run(reset_mode or self.reset_mode)
        except (CrashedError, ResendExhaustedError):
            # The restart itself was interrupted (a fresh fault, or a DC
            # became unreachable mid-redo).  Restart clears the crashed
            # flag early so its own redo traffic passes _check_up; a
            # half-restarted TC must not pass for operational, so re-mark
            # it and let the supervisor retry the whole restart.
            self._crashed = True
            raise
        self._crashed = False
        return stats

    def _on_dc_restart(self, dc: DataComponent) -> None:
        """Out-of-band prompt: the DC lost its cache; resend from the RSSP."""
        if self._crashed:
            return
        from repro.tc.recovery import resend_redo_stream

        # The DC lost cached state; until redo finishes rebuilding it, no
        # cached value for its tables can be trusted.
        self._uncache_dc(dc.name)
        # Close the DC to ordinary dispatch for the whole redo window: a
        # new operation arriving mid-rebuild would read committed records
        # as absent (and a later abort would then undo to that absence).
        with self._redo_cv:
            self._dc_redo[dc.name] = threading.get_ident()
        root = self.tracer.start_trace(
            "tc.dc_restart_redo", component=self.name, dc=dc.name
        )
        try:
            with self.tracer.activate(root):
                eosl = self.log.force()
                if dc.name in self._channels:
                    # Acked: redo below relies on the DC knowing the
                    # current EOSL.
                    self._request_acked(
                        dc.name, EndOfStableLog(tc_id=self.tc_id, eosl=eosl)
                    )
                resend_redo_stream(self, dc_names={dc.name})
                # Close the DC-side redo window before anything that may
                # dispatch ordinary (non-redo) traffic: zombie CLR retries
                # below re-send as normal operations.  Acked: a lost close
                # would leave the DC bouncing this TC forever.
                if dc.name in self._channels:
                    self._request_acked(dc.name, RedoComplete(tc_id=self.tc_id))
                self._retry_zombie_rollbacks()
                self._retry_zombie_completions()
                self.broadcast_lwm()
        finally:
            root.finish()
            with self._redo_cv:
                self._dc_redo.pop(dc.name, None)
                self._redo_cv.notify_all()
            _sched.notify(f"redo:{dc.name}")
        self.metrics.incr("tc.dc_restart_redos")

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- introspection -------------------------------------------------------------------------------------

    def active_count(self) -> int:
        with self._admin:
            return len(self._active)

    def stats(self) -> dict[str, object]:
        """Introspection snapshot: log, locks, routing, contract state."""
        return {
            "tc_id": self.tc_id,
            "cc_policy": self.cc.name,
            "active_transactions": self.active_count(),
            "log_records": self.log.record_count(),
            "stable_records": self.log.stable_count(),
            "eosl": self.log.eosl,
            "lwm": self.log.lwm,
            "rssp": self._rssp,
            "locks_held": self.locks.total_locks(),
            "tables_routed": len(self._routes),
            "dcs_attached": len(self._channels),
        }

    def channels(self) -> dict[str, MessageChannel]:
        return dict(self._channels)
