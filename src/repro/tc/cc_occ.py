"""Optimistic concurrency control (``TcConfig.cc_policy="occ"``).

Reads take no locks and make no lock-manager calls at all: a point read
is one DC round trip bracketed by registry/stamp probes, a scan is the
range read alone.  Conflicts surface in two ways:

- **Read-time conflict abort** — a read (or scan) that would observe a
  key with an unsettled in-place write aborts immediately.  Waiting is
  pointless (the writer holds its X lock to transaction end) and
  returning the value would be a dirty read, so the paper-classic
  "abort and retry" is the whole policy.
- **Commit-time validation** — each read records the key's settled-write
  stamp *captured before the value was fetched*; each scan records its
  table's stamp the same way.  Validation re-checks them under the
  install mutex: any writer that settled in between (committed *or*
  rolled back) fails the reader.  Writers that validate successfully
  bump their write stamps in the same critical section, so validation
  order is the serialization order.

Serializability argument: the serialization point is validation.  A
committed reader's whole read set was still current when it validated
(any write that settled after the stamp capture fails it), writers
settle in validation order (stamps bump inside the critical section),
so every conflict edge points from earlier to later validation.  Note
that *event* order is not conflict order here: repeated reads are
re-served from the transaction-private workspace (classic OCC), so a
cached read can complete after a concurrent writer's in-place write
yet legitimately return the older value — the oracle therefore judges
occ in multiversion (MVSG) mode, like mvcc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import TransactionAborted
from repro.common.ops import ReadFlavor
from repro.common.records import Key
from repro.tc.cc import ValidatingCc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tc.transactional_component import Transaction


class OptimisticCc(ValidatingCc):
    name = "occ"

    def _read_conflict(self, txn: "Transaction", what: object) -> None:
        self.tc.metrics.incr("tc.cc_read_conflicts")
        raise TransactionAborted(
            txn.txn_id, f"occ: read conflicts with unsettled writer of {what!r}"
        )

    def read(self, txn: "Transaction", table: str, key: Key) -> object:
        tc = self.tc
        slot = (table, key)
        own = txn.known.get(slot)
        if own is not None:
            return own
        state = self._state(txn)
        cached = state.values.get(slot)
        if cached is not None:
            return cached
        with self._mu:
            owner = self._writers.get(slot)
            stamp = self._stamps.get(slot, 0)
        if owner is not None and owner != txn.txn_id:
            self._read_conflict(txn, slot)
        value = tc._cc_fetch(table, key)
        # Re-probe after the round trip: a writer that registered while
        # the read was in flight may have put an uncommitted value in the
        # reply.  A writer that registered *and settled* in flight bumped
        # the stamp, which the pre-fetch capture turns into a
        # validation-time abort.
        with self._mu:
            owner = self._writers.get(slot)
        if owner is not None and owner != txn.txn_id:
            self._read_conflict(txn, slot)
        state.reads.setdefault(slot, stamp)
        state.values[slot] = value
        tc.metrics.incr("tc.cc_lockfree_reads")
        return value

    def scan(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        tc = self.tc
        state = self._state(txn)
        with self._mu:
            tstamp = self._table_stamps.get(table, 0)
        views = tc.read_range_raw(table, low, high, limit, ReadFlavor.OWN)
        results = [view.as_tuple() for view in views]
        with self._mu:
            dirty = [
                slot
                for slot, owner in self._writers.items()
                if slot[0] == table
                and owner != txn.txn_id
                and self._in_range(slot[1], low, high)
            ]
        if dirty:
            # An unsettled in-place write (update, or an uncommitted
            # insert/delete the DC already applied) may be in the result.
            self._read_conflict(txn, dirty[0])
        self._record_scan(state, table, tstamp, results)
        return results
