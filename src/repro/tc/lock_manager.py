"""Transactional locking without page knowledge (Sections 3.1, 4.1.1).

The TC's lock manager isolates transactions (strict two-phase locking) and
— critically for unbundling — guarantees the DC never sees two conflicting
operations in flight at once: an operation is only sent while its lock is
held, and locks are held to transaction end.

Granularity hierarchy: table -> (optional range partition) -> record/gap.
Modes are the classic five (IS, IX, S, SIX, X).  Deadlocks are detected by
cycle search on the waits-for graph; the requester is the victim.

Resources are plain hashable tuples, e.g.::

    ("table", "users")            whole table (intention or full lock)
    ("part", "users", 3)          range partition 3 (range-lock protocol)
    ("rec", "users", key)         one record
    ("gap", "users", key)         the open interval below key (phantoms)
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.common.errors import DeadlockError, LockTimeoutError
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint

Resource = Hashable


class LockMode(enum.Enum):
    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"


_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {}


def _fill_compat() -> None:
    order = [LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X]
    matrix = [
        # IS     IX     S      SIX    X
        [True, True, True, True, False],  # IS
        [True, True, False, False, False],  # IX
        [True, False, True, False, False],  # S
        [True, False, False, False, False],  # SIX
        [False, False, False, False, False],  # X
    ]
    for row, held in enumerate(order):
        for col, requested in enumerate(order):
            _COMPATIBLE[(held, requested)] = matrix[row][col]


_fill_compat()

#: Least upper bound used for in-place upgrades (held, requested) -> result.
_UPGRADE: dict[tuple[LockMode, LockMode], LockMode] = {
    (LockMode.IS, LockMode.IX): LockMode.IX,
    (LockMode.IS, LockMode.S): LockMode.S,
    (LockMode.IS, LockMode.SIX): LockMode.SIX,
    (LockMode.IS, LockMode.X): LockMode.X,
    (LockMode.IX, LockMode.S): LockMode.SIX,
    (LockMode.IX, LockMode.SIX): LockMode.SIX,
    (LockMode.IX, LockMode.X): LockMode.X,
    (LockMode.S, LockMode.IX): LockMode.SIX,
    (LockMode.S, LockMode.SIX): LockMode.SIX,
    (LockMode.S, LockMode.X): LockMode.X,
    (LockMode.SIX, LockMode.X): LockMode.X,
}


def combined_mode(held: LockMode, requested: LockMode) -> LockMode:
    if held is requested:
        return held
    return _UPGRADE.get((held, requested), _UPGRADE.get((requested, held), LockMode.X))


def mode_covers(held: LockMode, requested: LockMode) -> bool:
    """Does holding ``held`` already grant ``requested``?"""
    return combined_mode(held, requested) is held


@dataclass
class _LockEntry:
    holders: dict[int, LockMode] = field(default_factory=dict)
    #: FIFO queue of (txn_id, requested_mode); honored in order to avoid
    #: starvation of writers behind streams of readers.
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class _Stripe:
    """One shard of the lock table: its own mutex + condition + dict."""

    __slots__ = ("cv", "table")

    def __init__(self) -> None:
        # A plain (non-reentrant) Lock under the condition: nothing here
        # re-enters, and the uncontended grant path enters/exits this lock
        # twice per operation.
        self.cv = threading.Condition(threading.Lock())
        self.table: dict[Resource, _LockEntry] = {}


class LockManager:
    """A classic lock table; one instance per TC.

    The table is hash-striped (``TcConfig.lock_stripes``): each stripe has
    its own mutex and condition, so concurrent committers touching
    different resources stop serializing on a single lock-table mutex.  A
    grant/release touches exactly one stripe; the deadlock detector is the
    only multi-stripe path, and it takes every stripe mutex (in order,
    under a detector mutex, while the detecting waiter itself holds none)
    to read a globally consistent waits-for snapshot.  ``stripes=1``
    reproduces the old single-mutex behavior exactly.
    """

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        deadlock_detection: bool = True,
        timeout: float = 1.0,
        tracer: Optional[object] = None,
        stripes: int = 16,
    ) -> None:
        self.metrics = metrics or Metrics()
        self.deadlock_detection = deadlock_detection
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if not self.tracer.enabled and type(self).acquire is LockManager.acquire:
            # No tracing: dispatch straight to the untraced body so the
            # lock hot path pays nothing for instrumentation.
            self.acquire = self._acquire
        self._stripes = tuple(_Stripe() for _ in range(max(1, int(stripes))))
        self._stripe_count = len(self._stripes)
        #: Guards _held_by_txn and _waiting_on.  Lock order is always
        #: stripe -> admin (never admin -> stripe), and no thread holds
        #: two stripe mutexes except the detector, which owns them all.
        self._admin = threading.Lock()
        #: Serializes deadlock detectors so at most one thread ever tries
        #: to collect the full stripe set.
        self._detect = threading.Lock()
        self._held_by_txn: dict[int, set[Resource]] = {}
        #: txn -> resource it is currently waiting on (waits-for edges).
        self._waiting_on: dict[int, Resource] = {}
        # Hot-path counter slots, bound once (see Metrics.counter): the
        # uncontended grant/release path does no metrics dict work per op.
        self._reacquired_slot = self.metrics.counter("locks.reacquired")
        self._requests_slot = self.metrics.counter("locks.requests")
        self._granted_slot = self.metrics.counter("locks.granted")
        self._released_slot = self.metrics.counter("locks.released")

    def _stripe_of(self, resource: Resource) -> _Stripe:
        return self._stripes[hash(resource) % self._stripe_count]

    @property
    def stripe_count(self) -> int:
        return self._stripe_count

    def _note_held(self, txn_id: int, resource: Resource) -> None:
        with self._admin:
            self._held_by_txn.setdefault(txn_id, set()).add(resource)

    def _note_waiting(self, txn_id: int, resource: Resource) -> None:
        with self._admin:
            self._waiting_on[txn_id] = resource

    def _clear_waiting(self, txn_id: int) -> None:
        with self._admin:
            self._waiting_on.pop(txn_id, None)

    # -- acquisition -------------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> None:
        """Grant ``mode`` on ``resource`` to ``txn_id``, blocking as needed.

        Raises :class:`DeadlockError` (victim = requester) or
        :class:`LockTimeoutError`.  Re-acquiring a covered mode is free;
        upgrades wait for conflicting holders to drain.
        """
        with self.tracer.span(
            "tc.lock_wait", component="tc", resource=repr(resource), mode=mode.value
        ):
            return self._acquire(txn_id, resource, mode, timeout)

    def _acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> None:
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(
                YieldPoint.LOCK_ACQUIRE,
                repr(resource),
                resource=repr(resource),
                mode=mode.value,
                txn=txn_id,
            )
        stripe = self._stripe_of(resource)
        # Covered re-acquire without the condition bracket: only the owning
        # transaction ever strengthens or releases its own hold, so a hold
        # observed here (GIL-atomic dict reads) is current for the caller —
        # about half of all acquires are table-intent re-acquires.
        probe = stripe.table.get(resource)
        if probe is not None:
            held = probe.holders.get(txn_id)
            if held is not None and mode_covers(held, mode):
                self._reacquired_slot.value += 1
                return
        with stripe.cv:
            entry = stripe.table.get(resource)
            if entry is None:
                # Uncontended fresh resource: grant without touching the
                # waiter queue (the overwhelmingly common case).
                entry = stripe.table[resource] = _LockEntry()
                entry.holders[txn_id] = mode
                self._requests_slot.value += 1
                self._granted_slot.value += 1
                self._note_held(txn_id, resource)
                return
            held = entry.holders.get(txn_id)
            if held is not None and mode_covers(held, mode):
                self._reacquired_slot.value += 1
                return
            self._requests_slot.value += 1
            if not entry.waiters and self._grantable(entry, txn_id, mode):
                entry.holders[txn_id] = (
                    combined_mode(held, mode) if held is not None else mode
                )
                self._granted_slot.value += 1
                self._note_held(txn_id, resource)
                return
            deadline = time.monotonic() + (
                timeout if timeout is not None else self.timeout
            )
            entry.waiters.append((txn_id, mode))
            self._note_waiting(txn_id, resource)
        # Blocked.  The wait loop holds the stripe mutex only around the
        # grant re-check and the condition wait; deadlock detection runs
        # with *no* stripe mutex held (it collects them all itself).
        try:
            while True:
                if self.deadlock_detection:
                    cycle = self._find_cycle(txn_id)
                    if cycle is not None:
                        self.metrics.incr("locks.deadlocks")
                        raise DeadlockError(txn_id, cycle)
                scheduled = _sched.ACTIVE is not None and _sched.task_active()
                with stripe.cv:
                    if self._grantable(entry, txn_id, mode):
                        current = entry.holders.get(txn_id)
                        entry.holders[txn_id] = (
                            combined_mode(current, mode)
                            if current is not None
                            else mode
                        )
                        self._granted_slot.value += 1
                        self._note_held(txn_id, resource)
                        return
                    self.metrics.incr("locks.waits")
                    if not scheduled:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not stripe.cv.wait(timeout=remaining):
                            if deadline - time.monotonic() <= 0:
                                self.metrics.incr("locks.timeouts")
                                raise LockTimeoutError(txn_id, resource)
                if scheduled:
                    # Cooperative blocking: a schedule-explorer task holds
                    # the run token, so a condition wait here would wedge
                    # the whole schedule.  Park at the scheduler instead
                    # (outside the stripe mutex); rescheduling re-runs the
                    # deadlock check and the grant probe above.  Real-time
                    # lock timeouts do not apply under step-paced runs.
                    _sched.maybe_yield(
                        YieldPoint.LOCK_BLOCKED,
                        repr(resource),
                        resource=repr(resource),
                        mode=mode.value,
                        txn=txn_id,
                    )
        finally:
            self._clear_waiting(txn_id)
            with stripe.cv:
                try:
                    entry.waiters.remove((txn_id, mode))
                except ValueError:
                    pass

    def _grantable(self, entry: _LockEntry, txn_id: int, mode: LockMode) -> bool:
        for holder, held_mode in entry.holders.items():
            if holder == txn_id:
                continue
            if not _COMPATIBLE[(held_mode, mode)]:
                return False
        # FIFO fairness: do not jump over an earlier incompatible waiter
        # unless we already hold the resource (upgrades go first to avoid
        # trivial upgrade deadlocks).
        if txn_id not in entry.holders:
            for waiter_id, waiter_mode in entry.waiters:
                if waiter_id == txn_id:
                    break
                if not _COMPATIBLE[(waiter_mode, mode)]:
                    return False
        return True

    # -- deadlock detection ------------------------------------------------------------

    def _blockers_of(self, txn_id: int, waiting: dict[int, Resource]) -> set[int]:
        resource = waiting.get(txn_id)
        if resource is None:
            return set()
        entry = self._stripe_of(resource).table.get(resource)
        if entry is None:
            return set()
        wanted = next(
            (mode for waiter, mode in entry.waiters if waiter == txn_id), None
        )
        if wanted is None:
            return set()
        return {
            holder
            for holder, held_mode in entry.holders.items()
            if holder != txn_id and not _COMPATIBLE[(held_mode, wanted)]
        }

    def _find_cycle(self, start: int) -> Optional[tuple[int, ...]]:
        """DFS over waits-for edges; returns a cycle through ``start``.

        Runs under the detector mutex with *every* stripe mutex held (taken
        in index order to stay deadlock-free against grant/release paths),
        so the waits-for graph it walks is a globally consistent snapshot.
        The caller holds no stripe mutex while calling this.
        """
        with self._detect:
            for stripe in self._stripes:
                stripe.cv.acquire()
            try:
                with self._admin:
                    waiting = dict(self._waiting_on)
                stack: list[tuple[int, list[int]]] = [(start, [start])]
                seen: set[int] = set()
                while stack:
                    node, path = stack.pop()
                    for blocker in self._blockers_of(node, waiting):
                        if blocker == start:
                            return tuple(path + [start])
                        if blocker not in seen:
                            seen.add(blocker)
                            stack.append((blocker, path + [blocker]))
                return None
            finally:
                for stripe in reversed(self._stripes):
                    stripe.cv.release()

    # -- release -----------------------------------------------------------------------

    def release(self, txn_id: int, resource: Resource) -> None:
        stripe = self._stripe_of(resource)
        with stripe.cv:
            entry = stripe.table.get(resource)
            if entry is None or txn_id not in entry.holders:
                return
            del entry.holders[txn_id]
            if not entry.holders and not entry.waiters:
                del stripe.table[resource]
            self._released_slot.value += 1
            stripe.cv.notify_all()
        with self._admin:
            held = self._held_by_txn.get(txn_id)
            if held is not None:
                held.discard(resource)
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(
                YieldPoint.LOCK_RELEASE, repr(resource), resource=repr(resource),
                txn=txn_id,
            )

    def release_all(self, txn_id: int) -> int:
        """Drop every lock of the transaction (commit/abort/crash)."""
        with self._admin:
            resources = self._held_by_txn.pop(txn_id, set())
        if not resources:
            return 0
        by_stripe: dict[int, list[Resource]] = {}
        for resource in resources:
            index = hash(resource) % self._stripe_count
            by_stripe.setdefault(index, []).append(resource)
        for index, group in by_stripe.items():
            stripe = self._stripes[index]
            with stripe.cv:
                for resource in group:
                    entry = stripe.table.get(resource)
                    if entry is None:
                        continue
                    entry.holders.pop(txn_id, None)
                    if not entry.holders and not entry.waiters:
                        del stripe.table[resource]
                stripe.cv.notify_all()
        self._released_slot.value += len(resources)
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(
                YieldPoint.LOCK_RELEASE, "*", txn=txn_id, count=len(resources)
            )
        return len(resources)

    def clear(self) -> None:
        """Volatile state is lost with the TC (crash injection)."""
        for stripe in self._stripes:
            with stripe.cv:
                stripe.table.clear()
                stripe.cv.notify_all()
        with self._admin:
            self._held_by_txn.clear()
            self._waiting_on.clear()

    # -- introspection ---------------------------------------------------------------------

    def holds(self, txn_id: int, resource: Resource, mode: LockMode) -> bool:
        stripe = self._stripe_of(resource)
        with stripe.cv:
            entry = stripe.table.get(resource)
            if entry is None:
                return False
            held = entry.holders.get(txn_id)
            return held is not None and mode_covers(held, mode)

    def locks_held(self, txn_id: int) -> int:
        with self._admin:
            return len(self._held_by_txn.get(txn_id, ()))

    def total_locks(self) -> int:
        total = 0
        for stripe in self._stripes:
            with stripe.cv:
                total += sum(len(entry.holders) for entry in stripe.table.values())
        return total
