"""The paper's two answers to range locking without pages (Section 3.1).

In an integrated kernel, a range operation executes *inside* the page and
can key-range-lock exactly the keys it sees.  An unbundled TC must lock
*before* the DC request, i.e. before knowing which keys exist.  The paper
offers two protocols, both implemented here behind one interface:

**Fetch-ahead** — probe the DC speculatively for the next batch of keys,
lock them (records + the gaps below them, giving key-range phantom
protection), then issue the real read and re-validate; if the keys changed
meanwhile the request "becomes again a speculative request".  Fine-grained
concurrency, one extra probe round trip per batch, two locks per key.

**Range partition** — statically partition each table's key space and lock
whole partitions.  "This protocol avoids key range locking, and hence
gives up some concurrency.  However it should also reduce locking overhead
since fewer locks are needed."  A table with no configured boundaries
degenerates to a single partition — a table lock.

Experiment E-LOCK quantifies the trade-off.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Optional

from repro.common.ops import ReadFlavor
from repro.common.records import Key
from repro.tc.lock_manager import LockMode, combined_mode, mode_covers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tc.transactional_component import Transaction, TransactionalComponent


class _TableEnd:
    """Sentinel key: the gap above the largest existing key."""

    def __repr__(self) -> str:
        return "<TABLE_END>"


TABLE_END = _TableEnd()


class FetchAheadProtocol:
    """Probe-lock-read-validate, with next-key gap locks for phantoms."""

    name = "fetch_ahead"

    def __init__(self, tc: "TransactionalComponent") -> None:
        self._tc = tc

    # -- point operations ----------------------------------------------------

    def _table_intent(self, txn: "Transaction", table: str, mode: LockMode) -> None:
        """Acquire a table-intent lock, memoized on the transaction: under
        strict 2PL the grant cannot be lost before transaction end, so a
        covered re-request skips the lock manager entirely."""
        held = txn.table_locks.get(table)
        if held is not None and mode_covers(held, mode):
            return
        self._tc.locks.acquire(txn.txn_id, ("table", table), mode)
        txn.table_locks[table] = mode if held is None else combined_mode(held, mode)

    def lock_for_read(self, txn: "Transaction", table: str, key: Key) -> None:
        self._table_intent(txn, table, LockMode.IS)
        self._tc.locks.acquire(txn.txn_id, ("rec", table, key), LockMode.S)

    def lock_for_update(self, txn: "Transaction", table: str, key: Key) -> None:
        self._table_intent(txn, table, LockMode.IX)
        self._tc.locks.acquire(txn.txn_id, ("rec", table, key), LockMode.X)

    def lock_for_insert(self, txn: "Transaction", table: str, key: Key) -> None:
        self.lock_for_update(txn, table, key)
        if self._tc.config.phantom_protection:
            self._lock_gap_above(txn, table, key, LockMode.X)

    def lock_for_delete(self, txn: "Transaction", table: str, key: Key) -> None:
        self.lock_for_update(txn, table, key)
        if self._tc.config.phantom_protection:
            # The deleted key's gap merges into its successor's gap.
            self._lock_gap_above(txn, table, key, LockMode.X)

    #: Bare write lock (table IX + record X, no gap probing): the
    #: optimistic/multiversion CC policies exclude phantoms by commit-time
    #: validation instead of gap locks, so every mutation kind takes only
    #: the point lock and the probe round trips vanish from the write path.
    lock_for_write = lock_for_update

    def _lock_gap_above(
        self, txn: "Transaction", table: str, key: Key, mode: LockMode
    ) -> None:
        tc = self._tc
        guard: object
        high = tc.table_high(table)
        if high is not None and key >= high:
            # The TC's high-water mark proves no key exists above ``key``
            # (docs/architecture.md §9.2; ``>=`` because the bound covers
            # the key being inserted itself): the gap is the open interval
            # below TABLE_END, named without the probe round trip.  This
            # is the common case for fresh-key (monotonic) inserts.
            guard = TABLE_END
        else:
            successors = tc.probe_keys(table, after=key, count=1)
            guard = successors[0] if successors else TABLE_END
        tc.locks.acquire(txn.txn_id, ("gap", table, guard), mode)
        tc.metrics.incr("tc.gap_locks")

    # -- range scans -------------------------------------------------------------

    def locked_range_read(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        """The fetch-ahead loop: probe, lock, read, validate, repeat."""
        tc = self._tc
        self._table_intent(txn, table, LockMode.IS)
        batch_size = tc.config.fetch_ahead_batch
        results: list[tuple[Key, object]] = []
        cursor = low
        inclusive = True
        while True:
            probed = tc.probe_keys(
                table, after=cursor, count=batch_size, until=high, inclusive=inclusive
            )
            if not probed:
                break
            for key in probed:
                tc.locks.acquire(txn.txn_id, ("rec", table, key), LockMode.S)
                if tc.config.phantom_protection:
                    tc.locks.acquire(txn.txn_id, ("gap", table, key), LockMode.S)
                    tc.metrics.incr("tc.gap_locks")
            # The authoritative read covers the whole gap since the cursor,
            # so a key inserted between probe and lock shows up and fails
            # validation (the read then "becomes again a speculative
            # request" — retry this batch, paper Section 3.1).
            views = tc.read_range_raw(
                table,
                cursor,
                probed[-1],
                None,
                ReadFlavor.OWN,
                low_exclusive=not inclusive and cursor is not None,
            )
            returned_keys = [view.key for view in views]
            if returned_keys != probed:
                tc.metrics.incr("tc.fetch_ahead_retries")
                continue
            results.extend(view.as_tuple() for view in views)
            if limit is not None and len(results) >= limit:
                return results[:limit]
            if len(probed) < batch_size:
                break
            cursor = probed[-1]
            inclusive = False
        if tc.config.phantom_protection:
            # Guard the open interval above the scanned range so later
            # inserts into it conflict with this scan (serializability).
            if high is not None:
                successors = tc.probe_keys(table, after=high, count=1)
                guard: object = successors[0] if successors else TABLE_END
            else:
                guard = TABLE_END
            tc.locks.acquire(txn.txn_id, ("gap", table, guard), LockMode.S)
            tc.metrics.incr("tc.gap_locks")
        return results


class RangePartitionProtocol:
    """Static key-space partitions, locked wholesale (Section 3.1)."""

    name = "range_partition"

    def __init__(self, tc: "TransactionalComponent") -> None:
        self._tc = tc
        self._boundaries: dict[str, list[Key]] = {}

    def set_boundaries(self, table: str, boundaries: list[Key]) -> None:
        """Sorted interior boundaries; partition i covers
        [boundary[i-1], boundary[i])."""
        self._boundaries[table] = sorted(boundaries)

    def partition_of(self, table: str, key: Key) -> int:
        return bisect.bisect_right(self._boundaries.get(table, []), key)

    def _partition_count(self, table: str) -> int:
        return len(self._boundaries.get(table, [])) + 1

    # -- point operations -------------------------------------------------------

    def lock_for_read(self, txn: "Transaction", table: str, key: Key) -> None:
        tc = self._tc
        tc.locks.acquire(txn.txn_id, ("table", table), LockMode.IS)
        tc.locks.acquire(
            txn.txn_id, ("part", table, self.partition_of(table, key)), LockMode.IS
        )
        tc.locks.acquire(txn.txn_id, ("rec", table, key), LockMode.S)

    def lock_for_update(self, txn: "Transaction", table: str, key: Key) -> None:
        tc = self._tc
        tc.locks.acquire(txn.txn_id, ("table", table), LockMode.IX)
        tc.locks.acquire(
            txn.txn_id, ("part", table, self.partition_of(table, key)), LockMode.IX
        )
        tc.locks.acquire(txn.txn_id, ("rec", table, key), LockMode.X)

    # Inserts and deletes need no gap probing: the partition IX lock
    # conflicts with any scanner's partition S lock, so phantoms are
    # excluded wholesale (the concurrency the paper says this gives up).
    lock_for_insert = lock_for_update
    lock_for_delete = lock_for_update
    #: OCC/MVCC write path: same partition IX + record X (validation
    #: handles phantoms, so nothing coarser is needed).
    lock_for_write = lock_for_update

    # -- range scans -----------------------------------------------------------------

    def locked_range_read(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        tc = self._tc
        tc.locks.acquire(txn.txn_id, ("table", table), LockMode.IS)
        first = 0 if low is None else self.partition_of(table, low)
        last = (
            self._partition_count(table) - 1
            if high is None
            else self.partition_of(table, high)
        )
        for partition in range(first, last + 1):
            tc.locks.acquire(txn.txn_id, ("part", table, partition), LockMode.S)
            tc.metrics.incr("tc.partition_locks")
        views = tc.read_range_raw(table, low, high, limit, ReadFlavor.OWN)
        return [view.as_tuple() for view in views]
