"""The TC's logical log: pure record-level redo/undo, no page ids anywhere.

Section 3.2's first challenge: "the TC log records cannot contain page
identifiers. Redo needs to be done at a logical level."  Every record here
speaks only of tables, keys and logical operations.

The log has a *stable prefix* and a *volatile tail*; :meth:`TcLog.force`
moves the boundary (making EOSL advance), and :meth:`TcLog.crash` models a
TC failure by truncating the tail — the operations in it are lost forever,
which is exactly what the DC-reset protocol of Section 5.3.2 must cope
with.

LSN assignment and record append happen under one mutex, so log order
equals LSN order — the OPSR (order-preserving serializable) property of
Section 4.1.1: because the lock manager never lets conflicting operations
be outstanding together, any order consistent per-key is correct, and
append order is trivially consistent.

:class:`LwmTracker` computes the low-water mark the TC periodically ships
to DCs: the largest operation id such that *every* issued operation id at
or below it has completed (Section 5.1.2, "Establishing LSNlw").
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.common.lsn import Lsn, LsnGenerator, NULL_LSN
from repro.common.ops import LogicalOperation
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint


@dataclass(frozen=True)
class TcLogRecord:
    lsn: Lsn
    txn_id: int

    def encoded_size(self) -> int:
        return 24


@dataclass(frozen=True)
class OpRecord(TcLogRecord):
    """A forward logical operation, with the undo info needed to invert it.

    The inverse is complete at append time (the TC validates existence and
    learns prior values under its own locks before logging), so a stable
    OpRecord can always be rolled back — even after a crash.
    """

    op: Optional[LogicalOperation] = None
    undo: Optional[LogicalOperation] = None
    dc_name: str = ""

    def encoded_size(self) -> int:
        size = super().encoded_size()
        if self.op is not None:
            size += self.op.encoded_size()
        if self.undo is not None:
            size += self.undo.encoded_size()
        return size


@dataclass(frozen=True)
class CompensationRecord(TcLogRecord):
    """A redo-only record for an inverse operation applied during rollback.

    ``undo_next`` points at the LSN of the next (earlier) operation still
    to be undone, making rollback idempotent across TC crashes, exactly
    like an ARIES CLR — but logical.

    A compensation record with ``op=None`` and ``canceled`` set is a
    *cancel marker*: the forward operation at LSN ``canceled`` was
    definitively rejected by its DC (it never executed and holds no undo
    obligation), so restart redo must not replay it — replaying a
    never-executed operation into a later state could make it succeed.
    """

    op: Optional[LogicalOperation] = None
    undo_next: Lsn = NULL_LSN
    dc_name: str = ""
    canceled: Lsn = NULL_LSN

    def encoded_size(self) -> int:
        size = super().encoded_size() + 8
        if self.op is not None:
            size += self.op.encoded_size()
        return size


@dataclass(frozen=True)
class CommitRecord(TcLogRecord):
    """Transaction durably committed once this record is stable."""


@dataclass(frozen=True)
class AbortRecord(TcLogRecord):
    """Rollback has been decided; compensation records follow."""


@dataclass(frozen=True)
class TxnEndRecord(TcLogRecord):
    """All work for the transaction, including cleanup, is complete."""


@dataclass(frozen=True)
class CheckpointRecord(TcLogRecord):
    """Contract termination: redo restarts at ``rssp`` (Section 4.2)."""

    rssp: Lsn = NULL_LSN


class LwmTracker:
    """Largest id L such that every issued operation id <= L has completed."""

    def __init__(self) -> None:
        self._pending: deque[Lsn] = deque()
        self._completed: set[Lsn] = set()
        self._lwm: Lsn = NULL_LSN

    def register(self, op_id: Lsn) -> None:
        """Ids must be registered in increasing order."""
        self._pending.append(op_id)

    def complete(self, op_id: Lsn) -> None:
        self._completed.add(op_id)
        while self._pending and self._pending[0] in self._completed:
            done = self._pending.popleft()
            self._completed.discard(done)
            self._lwm = done

    @property
    def lwm(self) -> Lsn:
        return self._lwm

    def outstanding(self) -> int:
        return len(self._pending)

    def reset(self) -> None:
        self._pending.clear()
        self._completed.clear()
        self._lwm = NULL_LSN


class GroupCommitCoalescer:
    """Lets N concurrently-committing transactions share one log force.

    Durability is never relaxed: :meth:`wait_stable` returns only once the
    caller's commit LSN is at or below EOSL — force-before-ack holds at
    every ``group_commit_size``.  The knob changes *who* forces, not
    *whether* stability precedes the acknowledgement.

    Protocol: each committing transaction is bracketed by
    :meth:`enter`/:meth:`exit`.  After appending its commit record it calls
    :meth:`wait_stable`; a waiter elects itself leader — and runs the
    force on behalf of everyone parked — as soon as any of these holds:

    - a full group has gathered (``waiting >= size``),
    - every in-flight committer is already parked (``waiting >=
      committers``: nobody else can join, so waiting longer buys nothing —
      this is also why a single-threaded workload forces immediately and
      never sleeps), or
    - the flush deadline has elapsed (bounds latency when committers
      trickle in slower than they park).

    Waits are bounded (condition timeouts), so a leader whose force raises
    (injected TC crash) never strands the group: each waiter times out,
    elects itself, and observes the same failure.
    """

    def __init__(
        self,
        log: "TcLog",
        size: int,
        deadline_ms: float,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"group_commit_size must be >= 1, got {size}")
        if deadline_ms < 0:
            raise ValueError(
                f"group_commit_deadline_ms must be >= 0, got {deadline_ms}"
            )
        self.log = log
        self.size = size
        self.deadline_ms = deadline_ms
        self.metrics = metrics or log.metrics
        self._cond = threading.Condition()
        self._committers = 0
        self._waiting = 0
        # Hot-path counter slot (see Metrics.counter): a lone committer
        # leads on every commit, so the lead count is per-transaction work.
        self._leads_slot = self.metrics.counter("tclog.group_commit_leads")

    def enter(self) -> None:
        """A transaction has begun committing (before its record appends)."""
        with self._cond:
            self._committers += 1

    def exit(self) -> None:
        with self._cond:
            self._committers -= 1
            # A departing committer can turn a parked waiter into the
            # leader (waiting >= committers now holds for it).
            self._cond.notify_all()

    def wait_stable(self, lsn: Lsn, force: Callable[[], Lsn]) -> None:
        """Block until ``lsn`` is on the stable log, forcing as leader when
        the election rule fires.  ``force`` is the owner's log-force hook
        (so fault injection at the force point still applies)."""
        if self.size <= 1:
            if self.log.needs_force(lsn):
                force()
            return
        if self._committers <= 1 and self._waiting == 0:
            # Lone committer: nobody to coalesce with and nobody parked to
            # notify, so lead immediately without the condition bracket
            # (the election rule would pick us on its first iteration
            # anyway).  The unlocked reads are GIL-atomic; a committer that
            # enters concurrently merely misses one sharing opportunity and
            # elects itself within the flush deadline — durability is
            # force-before-ack on both paths.
            if self.log.eosl < lsn:
                force()
                self._leads_slot.value += 1
                self.metrics.observe("tclog.group_commit_group_size", 1)
            return
        deadline_s = self.deadline_ms / 1000.0
        start = time.monotonic()
        led = False
        with self._cond:
            self._waiting += 1
            try:
                while self.log.eosl < lsn:
                    lead = (
                        self._waiting >= self.size
                        or self._waiting >= self._committers
                        or (time.monotonic() - start) >= deadline_s
                    )
                    if not lead:
                        self._cond.wait(timeout=deadline_s or None)
                        continue
                    led = True
                    group = self._waiting
                    self._cond.release()
                    try:
                        force()
                    finally:
                        self._cond.acquire()
                        self._cond.notify_all()
                    self._leads_slot.value += 1
                    self.metrics.observe("tclog.group_commit_group_size", group)
            finally:
                self._waiting -= 1
        if not led:
            self.metrics.incr("tclog.group_commit_riders")


class TcLog:
    """Append-only logical log with a stable prefix and volatile tail."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics or Metrics()
        #: Set by the owning TC; NULL_TRACER keeps standalone use silent.
        self.tracer = NULL_TRACER
        if type(self).force is TcLog.force:
            self.force = self._force  # rebound by use_tracer when tracing is on
        self._records: list[TcLogRecord] = []
        self._stable_count = 0
        #: Highest LSN physically dropped by checkpoint-driven truncation.
        #: EOSL falls back to it when truncation empties the stable
        #: prefix — those records *were* stable, so EOSL must not regress.
        self._truncated_upto: Lsn = NULL_LSN
        self._lsns = LsnGenerator()
        self._mutex = threading.Lock()
        self.lwm_tracker = LwmTracker()
        # Hot-path counter slots (see Metrics.counter): append runs once
        # per logical operation and again per commit/end record, so the
        # two metrics-dict lock acquisitions per append are worth shaving.
        self._appends_slot = self.metrics.counter("tclog.appends")
        self._bytes_slot = self.metrics.counter("tclog.bytes")

    # -- appending -----------------------------------------------------------

    def append(
        self, build: Callable[[Lsn], TcLogRecord], track_for_lwm: bool = False
    ) -> TcLogRecord:
        """Assign the next LSN and append the built record atomically."""
        with self._mutex:
            lsn = self._lsns.next()
            record = build(lsn)
            self._records.append(record)
            if track_for_lwm:
                self.lwm_tracker.register(lsn)
            self._appends_slot.value += 1
            self._bytes_slot.value += record.encoded_size()
            return record

    def issue_read_id(self) -> Lsn:
        """A request id for an unlogged operation (reads, probes)."""
        with self._mutex:
            op_id = self._lsns.next()
            self.lwm_tracker.register(op_id)
            return op_id

    def complete_op(self, op_id: Lsn) -> Lsn:
        """Mark an operation replied; returns the current low-water mark."""
        with self._mutex:
            self.lwm_tracker.complete(op_id)
            return self.lwm_tracker.lwm

    def complete_ops(self, op_ids: list[Lsn]) -> Lsn:
        """Mark several operations replied under one mutex bracket."""
        with self._mutex:
            complete = self.lwm_tracker.complete
            for op_id in op_ids:
                complete(op_id)
            return self.lwm_tracker.lwm

    @property
    def lwm(self) -> Lsn:
        return self.lwm_tracker.lwm

    # -- stability -------------------------------------------------------------

    def use_tracer(self, tracer: object) -> None:
        """Adopt the owning TC's tracer.

        When tracing is off, ``force`` is rebound straight to the untraced
        body so the group-commit hot path pays no wrapper dispatch at all.
        """
        self.tracer = tracer
        if type(self).force is not TcLog.force:
            return
        if tracer.enabled:
            self.__dict__.pop("force", None)
        else:
            self.force = self._force

    def force(self) -> Lsn:
        """Make every appended record stable; returns the new EOSL."""
        with self.tracer.span("tc.log_force", component="tc"):
            return self._force()

    def _force(self) -> Lsn:
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(YieldPoint.TC_LOG_FORCE, "tc")
        with self._mutex:
            if self._stable_count < len(self._records):
                self._stable_count = len(self._records)
                self.metrics.incr("tclog.forces")
            return self._eosl_locked()

    def _eosl_locked(self) -> Lsn:
        if self._stable_count == 0:
            return self._truncated_upto
        return self._records[self._stable_count - 1].lsn

    @property
    def eosl(self) -> Lsn:
        """End of stable log: the largest LSN guaranteed to survive a crash."""
        with self._mutex:
            return self._eosl_locked()

    @property
    def last_lsn(self) -> Lsn:
        return self._lsns.last

    def needs_force(self, lsn: Lsn) -> bool:
        return lsn > self.eosl

    # -- crash semantics ----------------------------------------------------------

    def crash(self) -> int:
        """Truncate the volatile tail; returns how many records were lost."""
        with self._mutex:
            lost = len(self._records) - self._stable_count
            del self._records[self._stable_count :]
            self.lwm_tracker.reset()
            self.metrics.incr("tclog.crashes")
            self.metrics.incr("tclog.records_lost", lost)
            return lost

    def recover_lsn_generator(self) -> None:
        """After a crash, continue LSNs above everything on the stable log."""
        with self._mutex:
            if self._records:
                self._lsns.advance_to(self._records[-1].lsn)
            elif self._truncated_upto != NULL_LSN:
                self._lsns.advance_to(self._truncated_upto)

    # -- checkpoint-driven truncation (Section 4.2 contract termination) -----

    def truncation_point(self, limit: Lsn) -> Lsn:
        """The largest LSN below which stable records may be dropped.

        ``limit`` is the redo scan start point (restart replays records at
        or above it), but redo safety alone is not enough: the LWM — and
        with it the RSSP — advances past completed *operations* of
        transactions that are still uncommitted, and restart's undo pass
        needs those operations' undo information.  So the point is capped
        at the oldest record of any transaction without a stable end
        record.  Only the stable prefix counts — a volatile end record is
        exactly what a crash erases.
        """
        with self._mutex:
            stable = self._records[: self._stable_count]
            ended = {
                record.txn_id
                for record in stable
                if isinstance(record, TxnEndRecord)
            }
            for record in stable:
                if record.lsn >= limit:
                    break
                if record.txn_id != 0 and record.txn_id not in ended:
                    return record.lsn
            return limit

    def truncate_below(self, point: Lsn) -> int:
        """Physically drop stable records with LSN below ``point``.

        The caller derives ``point`` from :meth:`truncation_point`; this
        method only enforces the mechanical invariants (never the volatile
        tail, never regress EOSL).  Returns how many records were dropped.
        """
        if point == NULL_LSN:
            return 0
        with self._mutex:
            drop = 0
            while drop < self._stable_count and self._records[drop].lsn < point:
                drop += 1
            if drop == 0:
                return 0
            self._truncated_upto = max(
                self._truncated_upto, self._records[drop - 1].lsn
            )
            del self._records[:drop]
            self._stable_count -= drop
            self.metrics.incr("tclog.truncations")
            self.metrics.incr("tclog.truncated_records", drop)
            return drop

    @property
    def truncated_upto(self) -> Lsn:
        with self._mutex:
            return self._truncated_upto

    # -- reading ----------------------------------------------------------------------

    def stable_records(self) -> list[TcLogRecord]:
        with self._mutex:
            return list(self._records[: self._stable_count])

    def all_records(self) -> list[TcLogRecord]:
        with self._mutex:
            return list(self._records)

    def stable_records_from(self, lsn: Lsn) -> Iterator[TcLogRecord]:
        for record in self.stable_records():
            if record.lsn >= lsn:
                yield record

    def record_count(self) -> int:
        with self._mutex:
            return len(self._records)

    def stable_count(self) -> int:
        with self._mutex:
            return self._stable_count
