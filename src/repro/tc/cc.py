"""Pluggable concurrency control (docs/architecture.md §19).

The TC's isolation machinery is factored behind one interface so the
engine (logging, recovery, resend, routing) is policy-agnostic — the
"Transparent Concurrency Control" decoupling applied to the unbundled
kernel.  Three policies ship, selected by :attr:`TcConfig.cc_policy`:

- ``"2pl"`` (:class:`TwoPhaseLockingCc`) — the paper's strict two-phase
  locking, delegating to the Section 3.1 range protocols unchanged.
- ``"occ"`` (:class:`repro.tc.cc_occ.OptimisticCc`) — lock-free reads
  with commit-time validation against concurrently settled writers.
- ``"mvcc"`` (:class:`repro.tc.cc_mvcc.MvccSnapshotCc`) — lock-free
  reads served from the committed before-image of any in-flight writer,
  with write locks and first-committer-wins read validation.

Every policy keeps **exclusive record locks on writes**.  That is not a
simplification but a structural obligation of unbundling: DC writes are
in-place and the TC logs *logical* undo learned under its own lock
(module docstring of ``transactional_component``), so two uncommitted
writers of one key would corrupt each other's undo information.  What
OCC/MVCC remove is every read-path lock — shared record locks, gap
locks, and the fetch-ahead probe round trips that feed them.

Correctness story shared by the two validating policies:

- **Version stamps.**  A per-key counter bumps whenever a write to the
  key *settles* — at commit validation, or when an abort's rollback has
  fully restored the before-image.  A per-table counter bumps on every
  settled write to the table (inserts/deletes and updates alike), which
  is what scan validation checks, closing phantom windows without gap
  locks.  Stamps are captured *before* the DC round trip that reads the
  value, so any settle racing the read is caught at validation.
- **Writer registry.**  Keys with an unsettled in-place write are
  registered until the writer's fate is settled — including through
  *zombie* rollbacks, whose locks are long released while the DC still
  holds uncommitted bytes.  OCC readers conflict-abort on registered
  keys; MVCC readers are served the registered before-image (captured
  with its stamp, so a reader of the old version validates against the
  old stamp and loses to a first committer).
- **Atomic validate-and-install.**  Read/scan-set checks and write-stamp
  bumps happen under one mutex with no yield inside; the explorer's
  ``cc.validate`` / ``cc.install`` yield points bracket the critical
  section so schedules interleave around (never inside) it.  After a
  successful validation the only failure left is a TC crash, which
  clears all volatile CC state with the lock table.

Undo-information hygiene: lock-free reads never touch ``txn.known`` or
the undo-info cache — both feed *undo logging* and must only ever hold
values learned under a covering lock.  Policy reads live in a separate
per-transaction read cache (:class:`CcTxnState`), which also provides
repeatable reads.

The schedule explorer sweeps all three policies against the
serializability oracle, and two negative controls
(``unsafe_skip_validation``, ``unsafe_mvcc_read_newest``) prove the
oracle catches a cheating validator — see ``tests/test_schedule_explorer``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.common.errors import TransactionAborted
from repro.common.records import Key
from repro.sim import schedule as _sched
from repro.sim.schedule import YieldPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tc.transactional_component import Transaction, TransactionalComponent

#: (table, key) — the unit the stamp/registry machinery tracks.
Slot = tuple


class CcTxnState:
    """Per-transaction concurrency-control bookkeeping (validating
    policies only; 2PL transactions never allocate one)."""

    __slots__ = ("reads", "values", "scans", "writes")

    def __init__(self) -> None:
        #: First-read stamp per slot; commit validation re-checks these.
        self.reads: dict[Slot, int] = {}
        #: Read cache: slot -> value | ABSENT (repeatable lock-free reads).
        self.values: dict[Slot, object] = {}
        #: First-scan table stamp per table; guards scans against any
        #: settled write (phantoms included) between scan and commit.
        self.scans: dict[str, int] = {}
        #: Slots this transaction wrote (stamped at settle).
        self.writes: set[Slot] = set()


class ConcurrencyControl:
    """The policy interface the TC dispatches through.

    The TC owns transactions, logging, rollback and the DC protocol; a
    policy decides what reads return, which locks writes take, and
    whether a transaction may commit.
    """

    name = "cc"
    #: True when inserts must learn an authoritative prior under the X
    #: lock even on the composed fast path (MVCC registers it as the
    #: before-image; an optimistic ABSENT guess would serve phantom
    #: absences to concurrent readers).
    needs_insert_prior = False

    def __init__(self, tc: "TransactionalComponent") -> None:
        self.tc = tc

    # -- read path ---------------------------------------------------------

    def read(self, txn: "Transaction", table: str, key: Key) -> object:
        """Return the transaction's view of ``(table, key)``: a value or
        the ``ABSENT`` sentinel.  May raise :class:`TransactionAborted`
        on a policy conflict (the TC then drives the rollback)."""
        raise NotImplementedError

    def scan(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        raise NotImplementedError

    # -- write path --------------------------------------------------------

    def lock_for_insert(self, txn: "Transaction", table: str, key: Key) -> None:
        raise NotImplementedError

    def lock_for_update(self, txn: "Transaction", table: str, key: Key) -> None:
        raise NotImplementedError

    def lock_for_delete(self, txn: "Transaction", table: str, key: Key) -> None:
        raise NotImplementedError

    def note_write(
        self,
        txn: "Transaction",
        table: str,
        key: Key,
        prior: object,
        structural: bool,
    ) -> None:
        """Called with the write's before-image (learned under the X
        lock) before the mutation is logged or shipped."""

    # -- commit / abort lifecycle -----------------------------------------

    def validate(self, txn: "Transaction") -> None:
        """Commit-time gate, after the pipeline is synced and before the
        commit record is appended.  Raises :class:`TransactionAborted`
        to veto the commit."""

    def on_committed(self, txn: "Transaction") -> None:
        """The commit decision is durable (stamps were installed at
        validation); release registry state before locks drop."""

    def on_abort_settled(self, txn: "Transaction") -> None:
        """Rollback fully applied at the DC — also reached late, from the
        zombie-rollback retry path, when a DC outage parked the abort."""

    def clear(self) -> None:
        """TC crash: all volatile policy state dies with the lock table."""


class TwoPhaseLockingCc(ConcurrencyControl):
    """Strict 2PL — the historical behavior, verbatim, behind the
    interface: shared read locks, gap-locked scans, no validation."""

    name = "2pl"

    def read(self, txn: "Transaction", table: str, key: Key) -> object:
        tc = self.tc
        if not tc.config.unsafe_skip_read_locks:
            tc.protocol.lock_for_read(txn, table, key)
        return tc._known_value(txn, table, key)

    def scan(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        tc = self.tc
        results = tc.protocol.locked_range_read(txn, table, low, high, limit)
        for key, value in results:
            # Scanned values were read under S locks: safe as undo info.
            txn.known[(table, key)] = value
        return results

    def lock_for_insert(self, txn: "Transaction", table: str, key: Key) -> None:
        self.tc.protocol.lock_for_insert(txn, table, key)

    def lock_for_update(self, txn: "Transaction", table: str, key: Key) -> None:
        self.tc.protocol.lock_for_update(txn, table, key)

    def lock_for_delete(self, txn: "Transaction", table: str, key: Key) -> None:
        self.tc.protocol.lock_for_delete(txn, table, key)


class ValidatingCc(ConcurrencyControl):
    """Shared machinery of the OCC and MVCC policies: version stamps,
    the unsettled-writer registry, before-image capture, and the atomic
    validate-and-install commit gate (module docstring)."""

    name = "validating"

    def __init__(self, tc: "TransactionalComponent") -> None:
        super().__init__(tc)
        self._mu = threading.Lock()
        #: Settled-write version stamp per slot.
        self._stamps: dict[Slot, int] = {}
        #: Settled-write stamp per table (any write; scans check this).
        self._table_stamps: dict[str, int] = {}
        #: Unsettled in-place writes: slot -> owning txn_id.
        self._writers: dict[Slot, int] = {}
        #: Before-image per registered slot: (value | ABSENT, stamp at
        #: capture).  The stamp travels with the value so a reader served
        #: the old version validates against the old stamp.
        self._before: dict[Slot, tuple[object, int]] = {}

    # -- per-transaction state --------------------------------------------

    @staticmethod
    def _state(txn: "Transaction") -> CcTxnState:
        state = txn.cc_state
        if state is None:
            state = txn.cc_state = CcTxnState()
        return state

    # -- write path --------------------------------------------------------

    def lock_for_insert(self, txn: "Transaction", table: str, key: Key) -> None:
        self.tc.protocol.lock_for_write(txn, table, key)

    lock_for_update = lock_for_insert
    lock_for_delete = lock_for_insert

    def note_write(
        self,
        txn: "Transaction",
        table: str,
        key: Key,
        prior: object,
        structural: bool,
    ) -> None:
        state = self._state(txn)
        slot = (table, key)
        with self._mu:
            owner = self._writers.get(slot)
            if owner is not None and owner != txn.txn_id:
                # The X lock was free, yet the key is registered: a zombie
                # rollback (DC outage) still owes the key its before-image.
                conflict = True
            else:
                conflict = False
                if owner is None:
                    self._writers[slot] = txn.txn_id
                    self._before[slot] = (prior, self._stamps.get(slot, 0))
                state.writes.add(slot)
        if conflict:
            self.tc.metrics.incr("tc.cc_write_conflicts")
            raise TransactionAborted(
                txn.txn_id, f"cc: unsettled writer holds {slot!r}"
            )

    # -- commit / abort lifecycle -----------------------------------------

    def validate(self, txn: "Transaction") -> None:
        tc = self.tc
        if tc.faults is not None:
            from repro.sim.faults import FaultPoint

            # A crash here loses the whole volatile validation state —
            # read sets, stamps, writer registry — mid-commit.
            tc.faults.hit(FaultPoint.TC_CC_VALIDATE, tc.name)
        state = txn.cc_state
        if _sched.task_active():
            _sched.maybe_yield(YieldPoint.CC_VALIDATE, "tc", txn=txn.txn_id)
        if state is None:
            return
        conflict: Optional[str] = None
        with self._mu:
            if not tc.config.unsafe_skip_validation:
                for slot, stamp in state.reads.items():
                    if self._stamps.get(slot, 0) != stamp:
                        conflict = f"read of {slot!r} is stale"
                        break
                if conflict is None:
                    for table, tstamp in state.scans.items():
                        if self._table_stamps.get(table, 0) != tstamp:
                            conflict = f"scan of {table!r} saw settled writes"
                            break
            if conflict is None:
                # Install: from here the commit decision is this policy's
                # — a later failure is a TC crash, which clears stamps and
                # registry wholesale.
                self._bump_locked(state.writes)
        if conflict is not None:
            tc.metrics.incr("tc.cc_validation_failures")
            raise TransactionAborted(txn.txn_id, f"cc validation failed: {conflict}")
        if state.writes:
            if tc.faults is not None:
                from repro.sim.faults import FaultPoint

                # Version stamps installed, commit record not yet durable:
                # a crash here must roll the transaction back on recovery
                # even though its writes already "won" validation.
                tc.faults.hit(FaultPoint.TC_CC_INSTALL, tc.name)
            if _sched.task_active():
                _sched.maybe_yield(YieldPoint.CC_INSTALL, "tc", txn=txn.txn_id)

    def _bump_locked(self, writes: set) -> None:
        """Settle ``writes``: bump their key and table stamps (caller
        holds the mutex)."""
        for slot in writes:
            self._stamps[slot] = self._stamps.get(slot, 0) + 1
        for table in {slot[0] for slot in writes}:
            self._table_stamps[table] = self._table_stamps.get(table, 0) + 1

    def on_committed(self, txn: "Transaction") -> None:
        state = txn.cc_state
        if state is None or not state.writes:
            return
        with self._mu:
            self._deregister_locked(txn.txn_id, state.writes)

    def on_abort_settled(self, txn: "Transaction") -> None:
        state = txn.cc_state
        if state is None or not state.writes:
            return
        with self._mu:
            # The rollback restored the before-images, which is a settled
            # write too: readers that fetched mid-flight values must fail
            # validation (their pre-fetch stamps are now stale).
            self._bump_locked(state.writes)
            self._deregister_locked(txn.txn_id, state.writes)

    def _deregister_locked(self, txn_id: int, writes: set) -> None:
        for slot in writes:
            if self._writers.get(slot) == txn_id:
                del self._writers[slot]
                self._before.pop(slot, None)

    def clear(self) -> None:
        with self._mu:
            self._stamps.clear()
            self._table_stamps.clear()
            self._writers.clear()
            self._before.clear()

    # -- shared read-path helpers -----------------------------------------

    @staticmethod
    def _in_range(key: Key, low: Optional[Key], high: Optional[Key]) -> bool:
        if low is not None and key < low:
            return False
        if high is not None and key > high:
            return False
        return True

    def _record_scan(
        self,
        state: CcTxnState,
        table: str,
        tstamp: int,
        results: list[tuple[Key, object]],
    ) -> None:
        """Track a scan: earliest table stamp wins (a later scan of the
        same table must still prove nothing settled since the first), and
        returned rows feed the repeatable-read cache."""
        state.scans.setdefault(table, tstamp)
        for key, value in results:
            state.values[(table, key)] = value


def make_policy(tc: "TransactionalComponent") -> ConcurrencyControl:
    """Instantiate the configured ``TcConfig.cc_policy`` for ``tc``."""
    policy = tc.config.cc_policy
    if policy == "2pl":
        return TwoPhaseLockingCc(tc)
    if policy == "occ":
        from repro.tc.cc_occ import OptimisticCc

        return OptimisticCc(tc)
    from repro.tc.cc_mvcc import MvccSnapshotCc

    return MvccSnapshotCc(tc)
