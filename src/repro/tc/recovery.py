"""TC restart: the client side of the ``restart`` contract (Section 4.2.1).

After a TC crash the stable log is the only surviving state.  Restart runs
the paper's sequence exactly:

1. **Reset** — tell every DC the largest stable LSN (LSNst); each DC
   discards (or record-level-resets, Section 6.1.2) cached state that
   reflects lost operations.  Causality guarantees nothing stable does.
2. **Redo** — resend every logged mutating operation from the redo scan
   start point onward, with its *original* LSN; DC abLSNs make the stream
   exactly-once (repeat history, logically).
3. **Undo** — submit inverse operations for loser transactions, newest
   first, resuming partially-rolled-back transactions from their last
   compensation record's ``undo_next``.  Versioned-table work is undone
   wholesale with an idempotent discard.
4. **Completion** — committed transactions missing their post-commit
   version cleanup get it re-issued; every finished transaction gets its
   end record; the log is forced and normal processing resumes.

:func:`resend_redo_stream` is also used alone when a *DC* crashes and
prompts the TC (Section 5.3.2 "DC Failure").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from collections import deque

from repro.common.api import (
    BatchedPerform,
    EndOfStableLog,
    PerformOperation,
    RedoComplete,
    RestartBegin,
)
from repro.common.errors import CrashedError, ReproError, ResendExhaustedError
from repro.common.lsn import Lsn, NULL_LSN
from repro.common.ops import (
    DeleteOp,
    IncrementOp,
    InsertOp,
    PromoteVersionsOp,
    UpdateOp,
)
from repro.common.records import Key
from repro.sim import schedule as _sched
from repro.storage.buffer import ResetMode
from repro.tc.log import (
    AbortRecord,
    CheckpointRecord,
    CommitRecord,
    CompensationRecord,
    OpRecord,
    TxnEndRecord,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tc.transactional_component import TransactionalComponent


def resend_redo_stream(
    tc: "TransactionalComponent", dc_names: Optional[set[str]] = None
) -> int:
    """Resend logged mutations from the RSSP with their original LSNs.

    ``dc_names`` restricts the stream to operations routed at specific DCs
    (the DC-crash case); ``None`` replays to every DC (TC restart).
    Returns the number of operations resent.

    With ``TcConfig.parallel_redo`` the per-DC streams run concurrently:
    over async channels (the process transport) one thread pumps every
    DC's pipe with a window of requests in flight per DC, so the server
    processes apply their streams in parallel; over local channels each
    stream gets a worker thread.  Either way the streams are independent
    (LSN order — all that abLSN idempotence requires — is preserved
    within each DC), so restart time follows the slowest DC instead of
    the sum.  Fault injection and the deterministic scheduler force the
    sequential path — a concurrent replay would make fault-rule hit
    counts and schedule decisions nondeterministic.
    """
    canceled = {
        record.canceled
        for record in tc.log.stable_records()
        if isinstance(record, CompensationRecord) and record.canceled != NULL_LSN
    }
    streams: dict[str, list] = {}
    for record in tc.log.stable_records_from(tc.rssp):
        if not isinstance(record, (OpRecord, CompensationRecord)):
            continue
        if record.op is None or not record.op.MUTATES:
            continue
        if record.lsn in canceled:
            # The DC definitively rejected this operation when it was
            # live; replaying it into today's state could make it succeed.
            continue
        if dc_names is not None and record.dc_name not in dc_names:
            continue
        streams.setdefault(record.dc_name, []).append(record)

    def accept(result, record) -> int:
        try:
            tc._expect_ok(result, record.op)
        except (CrashedError, ResendExhaustedError):
            raise
        except ReproError:
            # A rejected operation whose cancel marker was lost with
            # the volatile log tail rejects again deterministically
            # (it was validated under locks): note it and repeat
            # history onward.
            tc.metrics.incr("tc.redo_rejected")
            return 0
        return 1

    def replay(dc_name: str, records: list) -> int:
        resent = 0
        for record in records:
            if tc.faults is not None:
                from repro.sim.faults import FaultPoint

                # Crash-mid-redo: the restart dies with part of the
                # stream resent — abLSN idempotence makes the retried
                # restart's full replay exactly-once anyway.
                tc.faults.hit(FaultPoint.TC_REDO, tc.name)
            result = tc._perform(
                record.dc_name, record.op, record.lsn, resend=True, redo=True
            )
            resent += accept(result, record)
        return resent

    def replay_multiplexed(window: int = 4, batch: int = 16) -> int:
        """The async-channel variant: one thread pumps every DC's pipe,
        shipping the stream as :class:`BatchedPerform` redo envelopes
        with up to ``window`` envelopes in flight per DC, so all server
        processes apply their streams concurrently while the client pays
        one serialize-and-send per ``batch`` operations.  Each pipe is
        FIFO and its server handles requests in arrival order, so per-DC
        LSN order — all that abLSN idempotence requires — is preserved
        exactly as in the synchronous path.  A lost, errored or partial
        reply falls back to per-record :meth:`_perform`, which owns
        crash detection and the resend budget.
        """
        channels = {name: tc._channels[name] for name in streams}
        chunked = {
            name: [records[i : i + batch] for i in range(0, len(records), batch)]
            for name, records in streams.items()
        }
        cursors = {name: iter(chunks) for name, chunks in chunked.items()}
        pending: dict[str, deque] = {name: deque() for name in streams}
        resent = 0

        def replay_one(record) -> int:
            result = tc._perform(
                record.dc_name, record.op, record.lsn, resend=True, redo=True
            )
            return accept(result, record)

        def finish_one(name: str) -> int:
            future, chunk = pending[name].popleft()
            try:
                reply = channels[name].finish_async(future)
            except ReproError:
                reply = None
            if reply is None:
                return sum(replay_one(record) for record in chunk)
            results = {sub.op_id: sub.result for sub in reply.replies}
            done = 0
            for record in chunk:
                result = results.get(record.lsn)
                if result is None:
                    done += replay_one(record)
                else:
                    done += accept(result, record)
            return done

        def envelope(chunk) -> BatchedPerform:
            return BatchedPerform(
                tc_id=tc.tc_id,
                ops=tuple(
                    PerformOperation(
                        tc_id=tc.tc_id,
                        op_id=record.lsn,
                        op=record.op,
                        resend=True,
                        redo=True,
                    )
                    for record in chunk
                ),
                eosl=tc.log.eosl,
                redo=True,
            )

        exhausted: set[str] = set()
        while len(exhausted) < len(cursors) or any(pending.values()):
            for name in streams:
                if name not in exhausted and len(pending[name]) < window:
                    chunk = next(cursors[name], None)
                    if chunk is None:
                        exhausted.add(name)
                    else:
                        tc._check_up()
                        # Deferred: window-fill envelopes coalesce into one
                        # vectored write per DC; finish_async flushes that
                        # channel before awaiting, so nothing ever parks.
                        pending[name].append(
                            (
                                channels[name].request_async(
                                    envelope(chunk), defer=True
                                ),
                                chunk,
                            )
                        )
                        continue
                if pending[name]:
                    resent += finish_one(name)
        return resent

    deterministic_context = tc.faults is not None or _sched.ACTIVE is not None
    eligible = tc.config.parallel_redo and bool(streams) and not deterministic_context
    pipelined = eligible and all(
        getattr(tc._channels.get(name), "supports_async", False) for name in streams
    )
    parallel = eligible and len(streams) > 1
    if pipelined:
        resent = replay_multiplexed()
        if parallel:
            tc.metrics.incr("tc.redo_parallel_fanouts")
    elif not parallel:
        resent = 0
        for dc_name in sorted(streams):
            resent += replay(dc_name, streams[dc_name])
    else:
        results: dict[str, int] = {}
        failures: list[BaseException] = []
        flock = threading.Lock()

        def worker(dc_name: str, records: list) -> None:
            try:
                count = replay(dc_name, records)
                with flock:
                    results[dc_name] = count
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with flock:
                    failures.append(exc)

        threads = [
            threading.Thread(
                target=worker,
                args=(dc_name, records),
                name=f"tc-redo-{dc_name}",
                daemon=True,
            )
            for dc_name, records in sorted(streams.items())
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            # Prefer the failure kinds restart()'s caller knows how to
            # heal (re-mark crashed, supervisor retries the restart).
            for exc in failures:
                if isinstance(exc, (CrashedError, ResendExhaustedError)):
                    raise exc
            raise failures[0]
        tc.metrics.incr("tc.redo_parallel_fanouts")
        resent = sum(results.values())
    tc.metrics.incr("tc.redo_ops", resent)
    return resent


@dataclass
class _TxnInfo:
    ops: list[OpRecord] = field(default_factory=list)
    clrs: list[CompensationRecord] = field(default_factory=list)
    #: LSNs of forward operations canceled by a marker record: the DC
    #: definitively rejected them, so they carry no undo obligation.
    canceled: set[Lsn] = field(default_factory=set)
    committed: bool = False
    aborted: bool = False
    ended: bool = False
    has_promote: bool = False


class TcRestart:
    """One restart execution; create fresh per restart."""

    def __init__(self, tc: "TransactionalComponent") -> None:
        self._tc = tc

    def run(self, reset_mode: ResetMode = ResetMode.RECORD_RESET) -> dict[str, int]:
        tc = self._tc
        tc.log.recover_lsn_generator()
        stable_lsn = tc.log.eosl
        rssp, txns = self._analyze()
        tc._rssp = rssp
        # A restarted TC (a fresh process in the service deployment) must
        # never reuse a txn id that already appears in the stable log: the
        # analysis above groups records by txn id, so a reused id would
        # merge a finished transaction with a later unrelated one and
        # misclassify winners and losers at the *next* restart.
        tc.bump_txn_ids_past(max(txns, default=0))
        stats = {
            "stable_lsn": stable_lsn,
            "rssp": rssp,
            "redo_ops": 0,
            "undo_ops": 0,
            "losers": 0,
            "completed": 0,
        }

        # 1. Reset every DC's cache of our lost operations, refresh EOSL.
        # Acked delivery: a silently-dropped reset would leave the DC
        # holding state from operations the crash erased from the log.
        for name in tc.channels():
            tc._request_acked(
                name,
                RestartBegin(
                    tc_id=tc.tc_id,
                    stable_lsn=stable_lsn,
                    reset_mode=reset_mode.value,
                ),
            )
            tc._request_acked(
                name, EndOfStableLog(tc_id=tc.tc_id, eosl=stable_lsn)
            )

        # 2. Redo: repeat history from the redo scan start point.
        tc._crashed = False  # the component is operational from here on
        stats["redo_ops"] = resend_redo_stream(tc)
        # Close any DC-side redo windows held open for this TC.  A DC that
        # restarted while we were down prompted into our crashed
        # ``_on_dc_restart`` (a no-op), leaving its window open; the full
        # restart redo above covers that stream, so every window closes.
        for name in tc.channels():
            tc._request_acked(name, RedoComplete(tc_id=tc.tc_id))

        # 3./4. Finish unfinished transactions.
        for txn_id, info in txns.items():
            if info.ended:
                continue
            if info.committed:
                self._complete_committed(txn_id, info)
                stats["completed"] += 1
            else:
                stats["losers"] += 1
                stats["undo_ops"] += self._undo_loser(txn_id, info)

        tc.force_log()
        tc.metrics.incr("tc.restarts")
        return stats

    # -- analysis pass -----------------------------------------------------------

    def _analyze(self) -> tuple[Lsn, dict[int, _TxnInfo]]:
        rssp: Lsn = NULL_LSN
        txns: dict[int, _TxnInfo] = {}
        for record in self._tc.log.stable_records():
            if isinstance(record, CheckpointRecord):
                rssp = record.rssp
                continue
            info = txns.setdefault(record.txn_id, _TxnInfo())
            if isinstance(record, OpRecord):
                info.ops.append(record)
                if isinstance(record.op, PromoteVersionsOp):
                    info.has_promote = True
            elif isinstance(record, CompensationRecord):
                if record.canceled != NULL_LSN:
                    # A cancel marker is logged mid-transaction, before any
                    # rollback starts: it must not influence the CLR-based
                    # resume point.
                    info.canceled.add(record.canceled)
                else:
                    info.clrs.append(record)
            elif isinstance(record, CommitRecord):
                info.committed = True
            elif isinstance(record, AbortRecord):
                info.aborted = True
            elif isinstance(record, TxnEndRecord):
                info.ended = True
        return rssp, txns

    # -- completion of committed transactions ------------------------------------------

    def _complete_committed(self, txn_id: int, info: _TxnInfo) -> None:
        """Re-issue post-commit version cleanup lost with the volatile tail."""
        tc = self._tc
        versioned = self._versioned_keys(info)
        if versioned and not info.has_promote:
            for table, keys in sorted(versioned.items()):
                tc._send_version_cleanup(txn_id, table, keys, promote=True)
        tc.log.append(lambda lsn: TxnEndRecord(lsn=lsn, txn_id=txn_id))

    # -- undo of losers --------------------------------------------------------------------

    def _undo_loser(self, txn_id: int, info: _TxnInfo) -> int:
        """Roll back, resuming after any stable compensation records."""
        tc = self._tc
        if not info.aborted:
            tc.log.append(lambda lsn: AbortRecord(lsn=lsn, txn_id=txn_id))
        resume: Optional[Lsn] = info.clrs[-1].undo_next if info.clrs else None
        to_undo = [
            record
            for record in info.ops
            if record.undo is not None
            and record.lsn not in info.canceled
            and (resume is None or record.lsn <= resume)
        ]
        to_undo.sort(key=lambda record: record.lsn, reverse=True)
        # Versioned work is discarded wholesale — idempotent, so always
        # re-issued even if a pre-crash discard partially ran.
        versioned = self._versioned_keys(info)
        undone = len(to_undo)  # rollback consumes the list in place
        tc.rollback_operations(txn_id, to_undo, versioned)
        tc.log.append(lambda lsn: TxnEndRecord(lsn=lsn, txn_id=txn_id))
        return undone

    @staticmethod
    def _versioned_keys(info: _TxnInfo) -> dict[str, set[Key]]:
        versioned: dict[str, set[Key]] = {}
        for record in info.ops:
            op = record.op
            if (
                isinstance(op, (InsertOp, UpdateOp, DeleteOp, IncrementOp))
                and op.versioned
            ):
                versioned.setdefault(op.table, set()).add(op.key)
        return versioned
