"""MVCC snapshot reads (``TcConfig.cc_policy="mvcc"``).

Reads never lock *and never abort at read time*: a key with an
unsettled in-place write is served the writer's **committed
before-image** — the same before-value the TC already learns under the
writer's X lock for logical undo, re-used as a TC-side version store
(the in-process analogue of the versioned read-committed machinery of
Section 6.2/6.3).  Scans overlay the before-images onto the range read:
an uncommitted in-place delete reappears, an uncommitted insert
disappears, an uncommitted update reads back.

Writes keep exclusive record locks (undo-information discipline, see
``tc/cc.py``), so write-write conflicts serialize pessimistically;
"first committer wins" therefore manifests on the *read* side: every
read records the stamp of the version it observed — for a before-image,
the stamp captured when the image was taken — and commit-time validation
fails any transaction whose observed versions were superseded by a
writer that settled first.  That read validation is what lifts the
policy from snapshot isolation to full serializability (write skew
reads a version a first committer replaced, and is aborted); the
oracle sweeps it in multiversion (MVSG) mode, since before-image reads
legitimately complete *after* a concurrent writer's in-place write —
event order is not conflict order here.

``TcConfig.unsafe_mvcc_read_newest`` is the negative control: reads
bypass the before-image registry *and* read tracking, returning the
newest in-place bytes.  The explorer must catch the resulting dirty
reads and cycles within its schedule budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.ops import ReadFlavor
from repro.common.records import Key
from repro.tc.cc import ValidatingCc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tc.transactional_component import Transaction


class MvccSnapshotCc(ValidatingCc):
    name = "mvcc"
    #: Inserts must learn a real prior under the X lock: the optimistic
    #: fast-path ABSENT guess would be registered as a before-image and
    #: served to concurrent readers as a phantom absence.
    needs_insert_prior = True

    def read(self, txn: "Transaction", table: str, key: Key) -> object:
        tc = self.tc
        if tc.config.unsafe_mvcc_read_newest:
            # Negative control: newest in-place bytes, no version, no
            # tracking, no validation — dirty reads on purpose.
            return tc._cc_fetch(table, key)
        slot = (table, key)
        own = txn.known.get(slot)
        if own is not None:
            return own
        state = self._state(txn)
        cached = state.values.get(slot)
        if cached is not None:
            return cached
        with self._mu:
            owner = self._writers.get(slot)
            if owner is not None and owner != txn.txn_id:
                value, stamp = self._before[slot]
                state.reads.setdefault(slot, stamp)
                state.values[slot] = value
                tc.metrics.incr("tc.cc_before_image_reads")
                return value
            stamp = self._stamps.get(slot, 0)
        value = tc._cc_fetch(table, key)
        with self._mu:
            owner = self._writers.get(slot)
            if owner is not None and owner != txn.txn_id:
                # The fetch raced an in-place write; fall back to the
                # registered before-image (whose capture stamp replaces
                # the pre-fetch one — same version, same stamp).
                value, stamp = self._before[slot]
                self.tc.metrics.incr("tc.cc_before_image_reads")
        state.reads.setdefault(slot, stamp)
        state.values[slot] = value
        tc.metrics.incr("tc.cc_lockfree_reads")
        return value

    def scan(
        self,
        txn: "Transaction",
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, object]]:
        tc = self.tc
        from repro.tc.transactional_component import ABSENT

        if tc.config.unsafe_mvcc_read_newest:
            views = tc.read_range_raw(table, low, high, limit, ReadFlavor.OWN)
            return [view.as_tuple() for view in views]
        state = self._state(txn)
        with self._mu:
            tstamp = self._table_stamps.get(table, 0)
            overlay_keys = any(
                slot[0] == table
                and owner != txn.txn_id
                and self._in_range(slot[1], low, high)
                for slot, owner in self._writers.items()
            )
        # With an overlay pending, a limited fetch cannot know how many
        # rows survive the before-image substitution — fetch the range
        # and truncate after.
        fetch_limit = None if (limit is not None and overlay_keys) else limit
        views = tc.read_range_raw(table, low, high, fetch_limit, ReadFlavor.OWN)
        rows = {view.key: view.value for view in views}
        with self._mu:
            for slot, owner in self._writers.items():
                if slot[0] != table or owner == txn.txn_id:
                    continue
                if not self._in_range(slot[1], low, high):
                    continue
                value, _stamp = self._before[slot]
                if value is ABSENT:
                    rows.pop(slot[1], None)  # uncommitted insert: not yet
                else:
                    rows[slot[1]] = value  # uncommitted update/delete: old
        results = [(key, rows[key]) for key in sorted(rows)]
        if limit is not None:
            results = results[:limit]
        self._record_scan(state, table, tstamp, results)
        tc.metrics.incr("tc.cc_snapshot_scans")
        return results
