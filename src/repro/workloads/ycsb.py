"""YCSB-style workload presets.

The Yahoo! Cloud Serving Benchmark's core workloads are the lingua franca
for exactly the "cloud data serving" systems the paper targets; exposing
them as presets over :class:`~repro.workloads.generator.WorkloadRunner`
lets the experiments speak that language.

| preset | mix | the YCSB analogue |
|---|---|---|
| A | 50% reads / 50% updates | update heavy ("session store") |
| B | 95% reads / 5% updates | read mostly ("photo tagging") |
| C | 100% reads | read only ("user profile cache") |
| D | 95% reads / 5% inserts | read latest ("user status updates") |
| E | 95% short scans / 5% inserts | short ranges ("threaded conversations") |
| F | 50% reads / 50% read-modify-writes | read-modify-write ("user database") |

Read-modify-write is modelled with :meth:`Transaction.increment` (the
logical operation), making preset F a genuine exactly-once stressor.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import (
    DuplicateKeyError,
    NoSuchRecordError,
    ReproError,
    TransactionAborted,
)
from repro.workloads.generator import KeyDistribution, RunStats, uniform_keys, zipf_keys

#: preset -> (reads, updates, inserts, scans, rmw) fractions
PRESETS: dict[str, tuple[float, float, float, float, float]] = {
    "A": (0.50, 0.50, 0.00, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00, 0.00),
    "E": (0.00, 0.00, 0.05, 0.95, 0.00),
    "F": (0.50, 0.00, 0.00, 0.00, 0.50),
}


@dataclass
class YcsbConfig:
    preset: str = "A"
    keyspace: int = 1000
    distribution: KeyDistribution = KeyDistribution.ZIPF
    zipf_skew: float = 1.2
    scan_length: int = 20
    value_bytes: int = 100
    seed: int = 0


class YcsbWorkload:
    """Run a YCSB preset against any engine with the shared txn surface."""

    def __init__(
        self,
        begin: Callable[[], object],
        table: str = "usertable",
        config: Optional[YcsbConfig] = None,
    ) -> None:
        self._begin = begin
        self.table = table
        self.config = config or YcsbConfig()
        if self.config.preset not in PRESETS:
            raise ReproError(f"unknown YCSB preset {self.config.preset!r}")
        self._next_insert = self.config.keyspace

    def load(self) -> None:
        """The YCSB load phase: populate the keyspace.

        Numeric values so preset F's read-modify-write (increment) works.
        """
        for key in range(self.config.keyspace):
            txn = self._begin()
            try:
                txn.insert(self.table, key, key * 10)
                txn.commit()
            except DuplicateKeyError:
                txn.abort()

    def _keys(self, count: int) -> list[int]:
        cfg = self.config
        if cfg.distribution is KeyDistribution.UNIFORM:
            return uniform_keys(count, cfg.keyspace, cfg.seed)
        return zipf_keys(count, cfg.keyspace, cfg.zipf_skew, cfg.seed)

    def run(self, operations: int) -> RunStats:
        reads, updates, inserts, scans, rmw = PRESETS[self.config.preset]
        rng = random.Random(self.config.seed + 1)
        keys = self._keys(operations)
        stats = RunStats()
        started = time.perf_counter()
        for index in range(operations):
            key = keys[index]
            roll = rng.random()
            txn = self._begin()
            try:
                if roll < reads:
                    txn.read(self.table, key)
                elif roll < reads + updates:
                    txn.update(self.table, key, rng.randrange(10**6))
                elif roll < reads + updates + inserts:
                    self._next_insert += 1
                    txn.insert(self.table, self._next_insert, 0)
                elif roll < reads + updates + inserts + scans:
                    txn.scan(self.table, key, key + self.config.scan_length)
                else:  # read-modify-write
                    txn.increment(self.table, key, 1)
                txn.commit()
                stats.committed += 1
                stats.operations += 1
            except (
                TransactionAborted,
                DuplicateKeyError,
                NoSuchRecordError,
            ) as exc:
                stats.aborted += 1
                stats.note_error(type(exc).__name__)
                try:
                    txn.abort()
                except ReproError:
                    pass
        stats.elapsed_s = time.perf_counter() - started
        return stats
