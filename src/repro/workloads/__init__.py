"""Workload generators and the Section 2 photo-sharing application."""

from repro.workloads.generator import (
    KeyDistribution,
    OltpMix,
    WorkloadRunner,
    uniform_keys,
    zipf_keys,
)
from repro.workloads.photo_sharing import PhotoSharingApp
from repro.workloads.rdf_store import TripleStore
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

__all__ = [
    "KeyDistribution",
    "OltpMix",
    "PhotoSharingApp",
    "TripleStore",
    "WorkloadRunner",
    "YcsbConfig",
    "YcsbWorkload",
    "uniform_keys",
    "zipf_keys",
]
