"""An RDF-style triple store built on the unbundled kernel (Section 1.1).

The paper's second industry imperative: "one might build an RDF engine as
a DC with transactional functionality added as a separate layer."  This
module is that engine in miniature: triples (subject, predicate, object)
are stored under three clustered orderings — SPO, POS and OSP — as three
physical tables maintained in one transaction per assertion, so every
basic graph pattern with at least one bound position is a clustered range
scan.  Transactions, recovery, idempotence: all rented from the TC.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import DuplicateKeyError, NoSuchRecordError
from repro.common.records import KEY_MAX, KEY_MIN
from repro.kernel.unbundled import UnbundledKernel

Triple = tuple[str, str, str]


class TripleStore:
    """A transactional subject-predicate-object store."""

    #: physical orderings: table name -> permutation applied to (s, p, o)
    _ORDERINGS = {
        "spo": (0, 1, 2),
        "pos": (1, 2, 0),
        "osp": (2, 0, 1),
    }

    def __init__(self, kernel: Optional[UnbundledKernel] = None) -> None:
        self.kernel = kernel or UnbundledKernel()
        for table in self._ORDERINGS:
            self.kernel.create_table(f"triples_{table}")

    @staticmethod
    def _permute(triple: Triple, order: tuple[int, int, int]) -> Triple:
        return (triple[order[0]], triple[order[1]], triple[order[2]])

    # -- assertions ------------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Assert a triple in all three orderings, atomically.

        Returns False when the triple was already present.
        """
        triple = (subject, predicate, obj)
        txn = self.kernel.begin()
        try:
            for table, order in self._ORDERINGS.items():
                txn.insert(f"triples_{table}", self._permute(triple, order), True)
        except DuplicateKeyError:
            txn.abort()
            return False
        txn.commit()
        return True

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Retract a triple from all three orderings, atomically."""
        triple = (subject, predicate, obj)
        txn = self.kernel.begin()
        try:
            for table, order in self._ORDERINGS.items():
                txn.delete(f"triples_{table}", self._permute(triple, order))
        except NoSuchRecordError:
            txn.abort()
            return False
        txn.commit()
        return True

    def add_all(self, triples: list[Triple]) -> int:
        """Assert many triples in one transaction (all or nothing)."""
        added = 0
        with self.kernel.begin() as txn:
            for triple in triples:
                try:
                    for table, order in self._ORDERINGS.items():
                        txn.insert(
                            f"triples_{table}", self._permute(triple, order), True
                        )
                    added += 1
                except DuplicateKeyError:
                    continue
        return added

    # -- pattern matching ----------------------------------------------------------

    def match(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[str] = None,
    ) -> list[Triple]:
        """All triples matching the pattern (None = wildcard).

        Picks the ordering whose clustered prefix covers the bound
        positions, so every query with >= 1 bound position is one range
        scan on one physical table.
        """
        pattern = (subject, predicate, obj)
        table, order = self._pick_ordering(pattern)
        bound = [pattern[order[0]], pattern[order[1]], pattern[order[2]]]
        low: list[object] = []
        high: list[object] = []
        for value in bound:
            if value is None:
                low.append(KEY_MIN)
                high.append(KEY_MAX)
            else:
                low.append(value)
                high.append(value)
        with self.kernel.begin() as txn:
            rows = txn.scan(f"triples_{table}", tuple(low), tuple(high))
        inverse = [0, 0, 0]
        for position, source in enumerate(order):
            inverse[source] = position
        results = []
        for key, _true in rows:
            triple = (key[inverse[0]], key[inverse[1]], key[inverse[2]])
            if all(p is None or p == t for p, t in zip(pattern, triple)):
                results.append(triple)
        return results

    def _pick_ordering(self, pattern: tuple) -> tuple[str, tuple[int, int, int]]:
        """Longest bound prefix wins; SPO is the fallback for all-wildcard."""
        best_table, best_order, best_len = "spo", self._ORDERINGS["spo"], -1
        for table, order in self._ORDERINGS.items():
            prefix = 0
            for source in order:
                if pattern[source] is None:
                    break
                prefix += 1
            if prefix > best_len:
                best_table, best_order, best_len = table, order, prefix
        return best_table, best_order

    # -- convenience graph queries ------------------------------------------------------

    def objects(self, subject: str, predicate: str) -> list[str]:
        return [o for _s, _p, o in self.match(subject, predicate, None)]

    def subjects(self, predicate: str, obj: str) -> list[str]:
        return [s for s, _p, _o in self.match(None, predicate, obj)]

    def predicates_of(self, subject: str) -> list[str]:
        return sorted({p for _s, p, _o in self.match(subject, None, None)})

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        return bool(self.match(subject, predicate, obj))

    def count(self) -> int:
        with self.kernel.begin() as txn:
            return len(txn.scan("triples_spo"))

    def neighbors(self, subject: str, max_hops: int = 1) -> set[str]:
        """Nodes reachable from ``subject`` within ``max_hops`` edges."""
        frontier = {subject}
        seen: set[str] = set()
        for _hop in range(max_hops):
            next_frontier: set[str] = set()
            for node in frontier:
                for _s, _p, obj in self.match(node, None, None):
                    if obj not in seen and obj != subject:
                        next_frontier.add(obj)
            seen |= next_frontier
            frontier = next_frontier
            if not frontier:
                break
        return seen
