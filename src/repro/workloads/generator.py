"""Synthetic OLTP workload generation for the benchmarks.

The runner drives any engine exposing the shared transaction interface
(``begin()`` returning an object with insert/update/delete/read/scan/
commit/abort) — both the unbundled kernel and the monolithic baseline —
so every experiment compares identical logical work.

Key distributions: uniform and Zipfian (hot keys make lock conflicts and
page-sync pressure realistic; numpy supplies the Zipf sampler).
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.common.errors import (
    DuplicateKeyError,
    LockTimeoutError,
    NoSuchRecordError,
    ReproError,
    TransactionAborted,
)


class KeyDistribution(enum.Enum):
    UNIFORM = "uniform"
    ZIPF = "zipf"


def uniform_keys(count: int, keyspace: int, seed: int = 0) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(keyspace) for _ in range(count)]


def zipf_keys(count: int, keyspace: int, skew: float = 1.2, seed: int = 0) -> list[int]:
    """Zipf-distributed keys folded into [0, keyspace)."""
    rng = np.random.default_rng(seed)
    raw = rng.zipf(skew, size=count)
    return [int(value - 1) % keyspace for value in raw]


@dataclass
class OltpMix:
    """Operation mix for one transaction (fractions sum to <= 1; the
    remainder becomes reads)."""

    updates: float = 0.3
    inserts: float = 0.1
    deletes: float = 0.0
    scans: float = 0.0
    ops_per_txn: int = 4
    scan_length: int = 10


@dataclass
class RunStats:
    committed: int = 0
    aborted: int = 0
    operations: int = 0
    elapsed_s: float = 0.0
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def txns_per_second(self) -> float:
        return self.committed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def note_error(self, name: str) -> None:
        self.errors[name] = self.errors.get(name, 0) + 1


class WorkloadRunner:
    """Drives an engine through a keyed OLTP workload, deterministically."""

    def __init__(
        self,
        begin: Callable[[], object],
        table: str,
        keyspace: int = 1000,
        mix: Optional[OltpMix] = None,
        distribution: KeyDistribution = KeyDistribution.UNIFORM,
        zipf_skew: float = 1.2,
        seed: int = 0,
    ) -> None:
        self._begin = begin
        self.table = table
        self.keyspace = keyspace
        self.mix = mix or OltpMix()
        self.distribution = distribution
        self.zipf_skew = zipf_skew
        self.seed = seed
        self._next_insert_key = keyspace  # inserts use fresh keys above

    def load(self, count: Optional[int] = None, value_bytes: int = 32) -> None:
        """Populate the table with ``count`` (default keyspace) records."""
        count = count if count is not None else self.keyspace
        payload = "x" * value_bytes
        for key in range(count):
            txn = self._begin()
            try:
                txn.insert(self.table, key, f"{payload}-{key}")
                txn.commit()
            except DuplicateKeyError:
                txn.abort()

    def _keys(self, count: int) -> list[int]:
        if self.distribution is KeyDistribution.UNIFORM:
            return uniform_keys(count, self.keyspace, self.seed)
        return zipf_keys(count, self.keyspace, self.zipf_skew, self.seed)

    def run(self, txn_count: int, value_bytes: int = 32) -> RunStats:
        rng = random.Random(self.seed + 1)
        mix = self.mix
        keys = self._keys(txn_count * mix.ops_per_txn)
        payload = "y" * value_bytes
        stats = RunStats()
        cursor = 0
        started = time.perf_counter()
        for _ in range(txn_count):
            txn = self._begin()
            try:
                for _op in range(mix.ops_per_txn):
                    key = keys[cursor]
                    cursor += 1
                    roll = rng.random()
                    if roll < mix.updates:
                        txn.update(self.table, key, f"{payload}-{key}")
                    elif roll < mix.updates + mix.inserts:
                        self._next_insert_key += 1
                        txn.insert(self.table, self._next_insert_key, payload)
                    elif roll < mix.updates + mix.inserts + mix.deletes:
                        txn.delete(self.table, key)
                    elif roll < mix.updates + mix.inserts + mix.deletes + mix.scans:
                        txn.scan(self.table, key, key + mix.scan_length)
                    else:
                        txn.read(self.table, key)
                    stats.operations += 1
                txn.commit()
                stats.committed += 1
            except (
                TransactionAborted,
                DuplicateKeyError,
                NoSuchRecordError,
                LockTimeoutError,
            ) as exc:
                stats.aborted += 1
                stats.note_error(type(exc).__name__)
                self._safe_abort(txn)
            except ReproError as exc:
                stats.note_error(type(exc).__name__)
                self._safe_abort(txn)
        stats.elapsed_s = time.perf_counter() - started
        return stats

    @staticmethod
    def _safe_abort(txn: object) -> None:
        try:
            txn.abort()
        except ReproError:
            pass
