"""The Section 2 application: a Web 2.0 photo-sharing platform.

The paper's motivating example: user accounts, photo ownership and access
rights, thematic groups, tags and reviews — "consistent under high update
rates; so there is a significant OLTP aspect" — plus *application-specific
index structures* (a phrase index over review text) that no relational
cloud service would provide, but that a home-grown DC can host while
renting transactional services from a TC.

The app uses heterogeneous access methods behind one DC:

- B-trees for users, photos, reviews, group membership;
- a fixed-page hashed heap for the phrase index (the "home-grown index
  manager"), keyed by (phrase, photo) pairs;

and multi-record transactions for the referential-integrity rules the
paper calls out (a review must reference an existing photo; deleting a
photo removes its tags, reviews and phrase-index entries atomically).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.common.errors import NoSuchRecordError, ReproError
from repro.common.records import KEY_MAX, KEY_MIN
from repro.kernel.unbundled import UnbundledKernel

_WORD = re.compile(r"[a-z0-9]+")


def extract_phrases(text: str, max_phrases: int = 16) -> list[str]:
    """Adjacent word pairs — the "phrases that express opinions" index."""
    words = _WORD.findall(text.lower())
    phrases = [f"{a} {b}" for a, b in zip(words, words[1:])]
    return phrases[:max_phrases]


class PhotoSharingApp:
    """The photo-sharing platform, running on an unbundled kernel."""

    def __init__(self, kernel: Optional[UnbundledKernel] = None) -> None:
        self.kernel = kernel or UnbundledKernel()
        self.kernel.create_table("users")
        self.kernel.create_table("photos")
        self.kernel.create_table("photo_tags")  # key (tag, photo_id)
        self.kernel.create_table("reviews")  # key (photo_id, user_id)
        self.kernel.create_table("groups")  # key (group, user_id)
        # The home-grown text index: a simple hashed heap is all it needs.
        self.kernel.create_table("phrase_index", kind="heap", bucket_count=64)

    # -- accounts -------------------------------------------------------------

    def register_user(self, user_id: str, profile: dict) -> None:
        with self.kernel.begin() as txn:
            txn.insert("users", user_id, profile)

    def join_group(self, group: str, user_id: str) -> None:
        with self.kernel.begin() as txn:
            if txn.read("users", user_id) is None:
                raise NoSuchRecordError("users", user_id)
            txn.insert("groups", (group, user_id), {"member": True})

    def group_members(self, group: str) -> list[str]:
        with self.kernel.begin() as txn:
            rows = txn.scan("groups", (group, KEY_MIN), (group, KEY_MAX))
        return [user_id for (_group, user_id), _v in rows]

    # -- photos ---------------------------------------------------------------------

    def upload_photo(
        self, photo_id: str, owner: str, meta: dict, tags: list[str]
    ) -> None:
        """Photo + ownership + tags, atomically (the OLTP aspect)."""
        with self.kernel.begin() as txn:
            if txn.read("users", owner) is None:
                raise NoSuchRecordError("users", owner)
            txn.insert("photos", photo_id, {"owner": owner, **meta})
            for tag in tags:
                txn.insert("photo_tags", (tag, photo_id), {"by": owner})

    def photos_by_tag(self, tag: str) -> list[str]:
        with self.kernel.begin() as txn:
            rows = txn.scan("photo_tags", (tag, KEY_MIN), (tag, KEY_MAX))
        return [photo_id for (_tag, photo_id), _v in rows]

    def delete_photo(self, photo_id: str) -> None:
        """Referential integrity: remove reviews, tags and phrase entries
        together with the photo — one transaction, several tables."""
        with self.kernel.begin() as txn:
            photo = txn.read("photos", photo_id)
            if photo is None:
                raise NoSuchRecordError("photos", photo_id)
            for (pid, user), review in txn.scan(
                "reviews", (photo_id, KEY_MIN), (photo_id, KEY_MAX)
            ):
                txn.delete("reviews", (pid, user))
                for phrase in extract_phrases(review["text"]):
                    try:
                        txn.delete("phrase_index", (phrase, photo_id))
                    except NoSuchRecordError:
                        pass  # duplicate phrases index once
            # Tags are keyed (tag, photo): without a secondary index this
            # is a filtered scan — the price of the simple physical schema.
            for (tag, pid), _v in txn.scan("photo_tags"):
                if pid == photo_id:
                    txn.delete("photo_tags", (tag, pid))
            txn.delete("photos", photo_id)

    # -- reviews & the phrase index ---------------------------------------------------

    def review_photo(self, photo_id: str, user_id: str, text: str, rating: int) -> None:
        if not 1 <= rating <= 5:
            raise ReproError("rating must be between 1 and 5")
        with self.kernel.begin() as txn:
            if txn.read("photos", photo_id) is None:
                raise NoSuchRecordError("photos", photo_id)
            if txn.read("users", user_id) is None:
                raise NoSuchRecordError("users", user_id)
            txn.insert(
                "reviews", (photo_id, user_id), {"text": text, "rating": rating}
            )
            for phrase in set(extract_phrases(text)):
                # the index records that the photo matches the phrase; a
                # second reviewer using the same phrase adds nothing new
                if txn.read("phrase_index", (phrase, photo_id)) is None:
                    txn.insert(
                        "phrase_index", (phrase, photo_id), {"user": user_id}
                    )

    def reviews_of(self, photo_id: str) -> list[dict]:
        with self.kernel.begin() as txn:
            rows = txn.scan("reviews", (photo_id, KEY_MIN), (photo_id, KEY_MAX))
        return [review for _key, review in rows]

    def photos_matching_phrase(self, phrase: str) -> list[str]:
        """Query the home-grown index: which photos have this opinion?"""
        with self.kernel.begin() as txn:
            rows = txn.scan(
                "phrase_index", (phrase, KEY_MIN), (phrase, KEY_MAX)
            )
        return [photo_id for (_phrase, photo_id), _v in rows]

    def average_rating(self, photo_id: str) -> Optional[float]:
        reviews = self.reviews_of(photo_id)
        if not reviews:
            return None
        return sum(review["rating"] for review in reviews) / len(reviews)
