"""A declarative schema layer with secondary indexes (Figure 2, generalized).

The paper's MyReviews table is "effectively ... an index in the physical
schema since it contains redundant data from the Reviews table" — a
secondary index maintained by the application inside the same transaction.
This module turns that pattern into a reusable layer: declare a table with
secondary indexes and the layer maintains the redundant index tables
atomically with every mutation, all on top of the plain public TC API.

    schema = Schema(kernel)
    users = schema.table(
        "users",
        indexes={"by_email": lambda key, value: value["email"]},
    )
    with kernel.begin() as txn:
        users.insert(txn, 7, {"email": "ada@lovelace.org"})
    with kernel.begin() as txn:
        assert users.lookup(txn, "by_email", "ada@lovelace.org") == [7]

Index tables are ordinary DC tables named ``{table}__{index}`` with keys
``(index_value, primary_key)``; equality and range lookups are clustered
scans, exactly the access-path argument Figure 2 makes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ReproError
from repro.common.records import KEY_MAX, KEY_MIN, Key, Value
from repro.kernel.unbundled import UnbundledKernel
from repro.tc.transactional_component import Transaction

IndexExtractor = Callable[[Key, Value], object]


class IndexedTable:
    """A primary table plus transactionally-maintained secondary indexes."""

    def __init__(
        self,
        schema: "Schema",
        name: str,
        indexes: dict[str, IndexExtractor],
        unique_indexes: Optional[set[str]] = None,
    ) -> None:
        self._schema = schema
        self.name = name
        self.indexes = dict(indexes)
        self.unique_indexes = set(unique_indexes or ())
        unknown_unique = self.unique_indexes - set(self.indexes)
        if unknown_unique:
            raise ReproError(f"unique constraint on unknown index: {unknown_unique}")

    def index_table(self, index: str) -> str:
        if index not in self.indexes:
            raise ReproError(f"table {self.name!r} has no index {index!r}")
        return f"{self.name}__{index}"

    # -- mutations (index maintenance rides the same transaction) ----------

    def insert(self, txn: Transaction, key: Key, value: Value) -> None:
        for index, extract in self.indexes.items():
            self._add_entry(txn, index, extract(key, value), key)
        txn.insert(self.name, key, value)

    def update(self, txn: Transaction, key: Key, value: Value) -> None:
        old_value = txn.read(self.name, key)
        for index, extract in self.indexes.items():
            if old_value is not None:
                old_entry = extract(key, old_value)
                new_entry = extract(key, value)
                if old_entry != new_entry:
                    txn.delete(self.index_table(index), (old_entry, key))
                    self._add_entry(txn, index, new_entry, key)
        txn.update(self.name, key, value)

    def delete(self, txn: Transaction, key: Key) -> None:
        old_value = txn.read(self.name, key)
        if old_value is not None:
            for index, extract in self.indexes.items():
                txn.delete(self.index_table(index), (extract(key, old_value), key))
        txn.delete(self.name, key)

    def _add_entry(
        self, txn: Transaction, index: str, entry: object, key: Key
    ) -> None:
        table = self.index_table(index)
        if index in self.unique_indexes:
            existing = txn.scan(table, (entry, KEY_MIN), (entry, KEY_MAX), limit=1)
            if existing:
                raise ReproError(
                    f"unique index {index!r} of {self.name!r} already maps "
                    f"{entry!r} -> {existing[0][0][1]!r}"
                )
        txn.insert(table, (entry, key), True)

    # -- reads --------------------------------------------------------------------

    def read(self, txn: Transaction, key: Key) -> Optional[Value]:
        return txn.read(self.name, key)

    def scan(
        self,
        txn: Transaction,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        return txn.scan(self.name, low, high, limit)

    def lookup(self, txn: Transaction, index: str, entry: object) -> list[Key]:
        """Primary keys whose index value equals ``entry`` (clustered scan)."""
        rows = txn.scan(
            self.index_table(index), (entry, KEY_MIN), (entry, KEY_MAX)
        )
        return [key for (_entry, key), _true in rows]

    def lookup_range(
        self,
        txn: Transaction,
        index: str,
        low: object = None,
        high: object = None,
    ) -> list[tuple[object, Key]]:
        """(index_value, primary_key) pairs with low <= value <= high."""
        rows = txn.scan(
            self.index_table(index),
            (low if low is not None else KEY_MIN, KEY_MIN),
            (high if high is not None else KEY_MAX, KEY_MAX),
        )
        return [(entry, key) for (entry, key), _true in rows]

    def fetch_by(
        self, txn: Transaction, index: str, entry: object
    ) -> list[tuple[Key, Value]]:
        """Index lookup followed by primary reads."""
        return [
            (key, txn.read(self.name, key)) for key in self.lookup(txn, index, entry)
        ]

    # -- integrity (used by tests) ------------------------------------------------------

    def verify_indexes(self, txn: Transaction) -> None:
        """Assert primary table and every index table agree exactly."""
        primary = dict(self.scan(txn))
        for index, extract in self.indexes.items():
            expected = sorted(
                (extract(key, value), key) for key, value in primary.items()
            )
            actual = sorted(
                (entry, key)
                for (entry, key), _true in txn.scan(self.index_table(index))
            )
            if expected != actual:
                raise ReproError(
                    f"index {index!r} of {self.name!r} diverged: "
                    f"{actual} != {expected}"
                )


class Schema:
    """Factory and registry for indexed tables on one kernel."""

    def __init__(self, kernel: UnbundledKernel, dc_name: Optional[str] = None) -> None:
        self.kernel = kernel
        self._dc_name = dc_name
        self.tables: dict[str, IndexedTable] = {}

    def table(
        self,
        name: str,
        indexes: Optional[dict[str, IndexExtractor]] = None,
        unique: Optional[set[str]] = None,
        versioned: bool = False,
    ) -> IndexedTable:
        if name in self.tables:
            raise ReproError(f"table {name!r} already declared")
        indexes = indexes or {}
        self.kernel.create_table(name, versioned=versioned, dc_name=self._dc_name)
        table = IndexedTable(self, name, indexes, unique)
        for index in indexes:
            self.kernel.create_table(
                table.index_table(index), dc_name=self._dc_name
            )
        self.tables[name] = table
        return table
