"""Transports between TCs and DCs: simulated in-process and real pipes.

- :mod:`repro.net.channel` — the in-process simulated network (loss,
  duplication, reordering, latency) plus the transport-selection factory.
- :mod:`repro.net.wire` — the self-describing codec for every message.
- :mod:`repro.net.rpc` — control-plane messages and frame envelopes.
- :mod:`repro.net.journal` — file-backed stable storage for DC servers.
- :mod:`repro.net.dcserver` — the DC server process entry point.
- :mod:`repro.net.process` — client proxy, transport and channel for the
  process deployment mode (docs/architecture.md §10).
"""

from repro.net.channel import MessageChannel, build_channel

__all__ = ["MessageChannel", "build_channel"]
