"""Simulated transport between TCs and DCs."""

from repro.net.channel import MessageChannel

__all__ = ["MessageChannel"]
