"""Control-plane messages and frame envelopes for the process transport.

The data plane of the process deployment mode is exactly the §4.2.1
message set of :mod:`repro.common.api`.  What §4.2.1 leaves to "the
environment" — how a TC finds a DC's tables, how the DC-prompted log
force crosses the process boundary, how the server announces itself —
is this module's small control plane.  Every control message is a
``Message`` subclass so the wire codec picks it up automatically.

Frames on the pipe are ``wire.encode((kind, seq, payload))``:

- ``REQUEST``/``REPLY`` — client RPC, correlated by ``seq``.  Requests
  are pipelined: the client may have many in flight and the server's
  replies complete client-side futures out of order, which is exactly
  the delivery model the §4.2.1 unique-id/idempotence contracts assume.
- ``SERVER_REQUEST``/``CLIENT_REPLY`` — the reverse direction, used for
  the causality gate: a DC system transaction that must not outrun the
  TC log sends :class:`ForceLogRequest` and blocks until the TC's force
  completes (Section 4.2.2's "DC prompts the TC to force its log").
- ``PUSH`` — one-way server-to-client traffic: the :class:`Hello`
  banner and spontaneous :class:`RsspHint` contract terminations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.api import Message
from repro.net import wire

# Envelope kinds (first element of every frame tuple).
REQUEST = 0
REPLY = 1
SERVER_REQUEST = 2
CLIENT_REPLY = 3
PUSH = 4
#: A wakeup for a parked shared-memory ring consumer (net/shm.py): the
#: pipe write is the doorbell, the frame itself carries nothing and is
#: discarded by kind on receipt.
DOORBELL = 5


def pack_frame(
    kind: int,
    seq: int,
    payload: object,
    fast: dict | None = None,
    scratch: bytearray | None = None,
) -> bytes:
    """Pack one frame; with a negotiated ``fast`` map the frame uses the
    CRC'd fast form (docs/architecture.md §17), else the tagged tuple."""
    if fast:
        return wire.encode_fast_frame(kind, seq, payload, fast, scratch)
    if scratch is not None:
        return wire.encode_into(scratch, (kind, seq, payload))
    return wire.encode((kind, seq, payload))


def unpack_frame(data: bytes) -> tuple[int, int, object]:
    # The two frame forms are distinguishable from byte 0: a tagged frame
    # starts with the tuple tag, a fast frame with FAST_MAGIC.  Decoding
    # is therefore unconditional — negotiation only gates the *encoder*,
    # so in-flight tagged traffic racing a codec upgrade stays valid.
    if data and data[0] == wire.FAST_MAGIC:
        frame = wire.decode_fast_frame(data)
    else:
        frame = wire.decode(data, expect=tuple)
        if len(frame) != 3:
            raise wire.WireDecodeError(f"malformed frame envelope: {frame!r}")
    if not isinstance(frame[0], int) or not isinstance(frame[1], int):
        raise wire.WireDecodeError(f"malformed frame envelope: {frame!r}")
    return frame  # type: ignore[return-value]


# -- server -> client ---------------------------------------------------------


@dataclass(frozen=True)
class Hello(Message):
    """First frame a DC server sends: identity plus the table catalog, so
    a reconnecting client can prime its routes without an extra RPC."""

    dc_name: str = ""
    pid: int = 0
    #: True when the server replayed a journal and ran DC-local recovery
    #: before accepting traffic (the kill -9 restart path).
    recovered: bool = False
    #: ``(name, kind, versioned)`` per hosted table.
    tables: tuple = ()
    #: The server's fast-path codec vocabulary, as ``(id, name, signature)``
    #: triples (see :func:`repro.net.wire.fast_vocabulary`).  Empty means
    #: the server speaks tagged only.
    fast_codec: tuple = ()
    #: The resolved listener address (``tcp://host:port`` or a Unix socket
    #: path).  Lets a client that asked for an ephemeral TCP port
    #: (``tcp://host:0``) pin the concrete port, so respawns after a crash
    #: rebind the same address and DC-pool clients can reconnect.
    listen_addr: str = ""


@dataclass(frozen=True)
class ForceLogRequest(Message):
    """Causality gate: block this DC system transaction until the TC log
    is stable through ``lsn`` (carried on a SERVER_REQUEST frame)."""

    lsn: int = 0


@dataclass(frozen=True)
class ForceLogReply(Message):
    eosl: int = 0


@dataclass(frozen=True)
class RsspHint(Message):
    """Spontaneous contract termination (§4.2.1): everything below
    ``lsn`` is stable at ``dc_name``."""

    dc_name: str = ""
    lsn: int = 0


@dataclass(frozen=True)
class RemoteError(Message):
    """A server-side exception, reflected back instead of a reply."""

    kind: str = ""
    text: str = ""


# -- client -> server ---------------------------------------------------------


@dataclass(frozen=True)
class NegotiateCodec(Message):
    """Enable the fast-path codec server→client for the intersection of
    ``vocab`` (the client's :func:`~repro.net.wire.fast_vocabulary`) with
    the server's own.  Sent after Hello by clients that chose to fast-
    encode; until it arrives the server encodes tagged, so there is no
    ordering race — each direction upgrades independently."""

    vocab: tuple = ()


@dataclass(frozen=True)
class AttachShm(Message):
    """Attach the client's shared-memory ring pair to this connection.

    Sent over the pipe after Hello/negotiation by a client that created
    a :class:`~repro.net.shm.ShmLink`; the server attaches by name and
    from the ack onward both sides may ride small frames on the rings
    (each side's producer leg enables independently — frames are
    self-describing, so mixed pipe/ring traffic is always valid).
    ``spin``/``park_ms`` share the client's spin-then-park tuning with
    the server loop so both ends agree on the wakeup discipline.
    """

    c2s_name: str = ""
    s2c_name: str = ""
    spin: int = 0
    park_ms: float = 0.0


@dataclass(frozen=True)
class RegisterTc(Message):
    """Install the §4.2.1 per-TC hooks server-side; the client bridges
    force-log and RSSP-hint callbacks back over the pipe."""


@dataclass(frozen=True)
class CreateTable(Message):
    name: str = ""
    kind: str = "btree"
    versioned: bool = False
    bucket_count: int = 16


@dataclass(frozen=True)
class TableList(Message):
    """Ask for the catalog (same shape as :attr:`Hello.tables`)."""


@dataclass(frozen=True)
class TableListReply(Message):
    tables: tuple = ()


@dataclass(frozen=True)
class StatsRequest(Message):
    """Fetch the server-side ``dc.stats()`` and metric counters."""


@dataclass(frozen=True)
class StatsReply(Message):
    payload: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CheckpointDcLog(Message):
    """Run a DC-local log checkpoint (may emit RsspHint pushes)."""


@dataclass(frozen=True)
class CheckpointDcLogReply(Message):
    advanced: bool = False


@dataclass(frozen=True)
class Shutdown(Message):
    """Graceful stop: the server acks, closes its journal and exits."""
