"""The DC server: one data component living in its own OS process.

:func:`serve` is the child-process entry point.  It opens (and replays)
the DC's journal volume, builds an ordinary
:class:`~repro.dc.data_component.DataComponent` on top, announces itself
with a :class:`~repro.net.rpc.Hello` push, then runs a single-threaded
request loop over one ``multiprocessing`` connection:

- §4.2.1 data/control messages (``PerformOperation``, ``BatchedPerform``,
  EOSL/LWM/checkpoint/restart traffic) dispatch to ``dc.handle`` exactly
  as the in-process transport would;
- the small control plane of :mod:`repro.net.rpc` (register, catalog,
  stats, shutdown) is served here;
- the **causality gate** is bridged: when a DC system transaction needs
  the TC log forced (Section 4.2.2), the server sends a
  ``SERVER_REQUEST`` ``ForceLogRequest`` and blocks until the matching
  ``CLIENT_REPLY`` arrives, stashing any pipelined client requests that
  land in between into an inbox that the main loop drains afterwards.

Single-threadedness is deliberate: one DC process is one core's worth of
DC work (the scale-out unit is the *process*), and it keeps the server's
view of request order identical to arrival order.  Parallelism comes from
running many DC processes, which is the point of the deployment mode.

If the parent dies (EOF on the pipe), the server exits; if the parent
SIGKILLs it, the journal's flushed frames survive in the OS page cache
and the next :func:`serve` on the same path replays them — the real-death
analogue of the in-memory store's crash separation.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from typing import Optional

from repro.common.api import ControlAck, Message
from repro.common.config import DcConfig
from repro.common.errors import CrashedError, ReproError
from repro.dc.data_component import DataComponent
from repro.net import rpc
from repro.net.journal import JournalStorage
from repro.net.rpc import (
    CheckpointDcLog,
    CheckpointDcLogReply,
    CreateTable,
    ForceLogReply,
    ForceLogRequest,
    Hello,
    RegisterTc,
    RemoteError,
    RsspHint,
    Shutdown,
    StatsReply,
    StatsRequest,
    TableList,
    TableListReply,
)


class _DcServer:
    def __init__(self, conn, name: str, config: Optional[DcConfig], journal_path: str):
        self._conn = conn
        self._storage = JournalStorage(journal_path)
        self._dc = DataComponent(
            name, config=config, metrics=self._storage.metrics, storage=self._storage
        )
        self._recovered = False
        if self._storage.replayed:
            # A previous incarnation wrote this volume: rebuild structures
            # from the stable catalog before accepting any traffic.  The
            # TC-side redo prompt is driven by the client after reconnect.
            self._dc.recover(notify_tcs=False)
            self._recovered = True
        #: Frames received while blocked inside a force-log bridge.
        self._inbox: deque = deque()
        self._sreq_seq = itertools.count(1)

    # -- framing ------------------------------------------------------------

    def _send(self, kind: int, seq: int, payload: object) -> None:
        self._conn.send_bytes(rpc.pack_frame(kind, seq, payload))

    def _next_frame(self) -> tuple[int, int, object]:
        if self._inbox:
            return self._inbox.popleft()
        return rpc.unpack_frame(self._conn.recv_bytes())

    # -- the causality-gate bridge -----------------------------------------

    def _force_bridge(self, tc_id: int):
        def force(lsn):
            seq = next(self._sreq_seq)
            self._send(
                rpc.SERVER_REQUEST, seq, ForceLogRequest(tc_id=tc_id, lsn=lsn)
            )
            while True:
                kind, rseq, payload = rpc.unpack_frame(self._conn.recv_bytes())
                if kind == rpc.CLIENT_REPLY and rseq == seq:
                    if isinstance(payload, ForceLogReply):
                        return payload.eosl
                    return lsn
                # A pipelined client request raced the reply; serve it
                # after the gate clears (arrival order is preserved).
                self._inbox.append((kind, rseq, payload))

        return force

    def _push_hint(self, dc_name: str, lsn: int) -> None:
        self._send(rpc.PUSH, 0, RsspHint(tc_id=0, dc_name=dc_name, lsn=lsn))

    # -- dispatch -----------------------------------------------------------

    def _catalog(self) -> tuple:
        tables = []
        for name in self._dc.table_names():
            handle = self._dc.table(name)
            tables.append(
                (name, handle.descriptor.kind, handle.descriptor.versioned)
            )
        return tuple(tables)

    def _dispatch(self, message: Message) -> Optional[Message]:
        if isinstance(message, RegisterTc):
            self._dc.register_tc(
                message.tc_id,
                force_log=self._force_bridge(message.tc_id),
                on_rssp_hint=self._push_hint,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, CreateTable):
            self._dc.create_table(
                message.name,
                kind=message.kind,
                versioned=message.versioned,
                bucket_count=message.bucket_count,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, TableList):
            return TableListReply(tc_id=message.tc_id, tables=self._catalog())
        if isinstance(message, StatsRequest):
            return StatsReply(
                tc_id=message.tc_id,
                payload={
                    "dc": self._dc.stats(),
                    "counters": self._dc.metrics.counters(),
                    "pid": os.getpid(),
                    "recovered": self._recovered,
                    "journal_bytes": self._storage.journal_bytes(),
                },
            )
        if isinstance(message, CheckpointDcLog):
            advanced = self._dc.checkpoint_dc_log()
            if advanced:
                # Everything below the new truncation point is reflected
                # in flushed pages, so the journal's history frames are
                # dead weight: rewrite it as live state.  A kill -9'd DC
                # now replays only the live tail, not its whole past.
                self._storage.compact()
            return CheckpointDcLogReply(tc_id=message.tc_id, advanced=advanced)
        if isinstance(message, Shutdown):
            return ControlAck(tc_id=message.tc_id)
        return self._dc.handle(message)

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        self._send(
            rpc.PUSH,
            0,
            Hello(
                tc_id=0,
                dc_name=self._dc.name,
                pid=os.getpid(),
                recovered=self._recovered,
                tables=self._catalog(),
            ),
        )
        try:
            while True:
                try:
                    kind, seq, message = self._next_frame()
                except (EOFError, OSError):
                    return  # parent is gone; nothing to serve
                if kind != rpc.REQUEST:
                    continue  # stray frame (e.g. a stale CLIENT_REPLY)
                try:
                    reply = self._dispatch(message)
                except CrashedError:
                    # The in-process transport maps a crashed DC to a lost
                    # message; mirror that (should not occur server-side).
                    reply = None
                except ReproError as exc:
                    reply = RemoteError(
                        tc_id=getattr(message, "tc_id", 0),
                        kind=type(exc).__name__,
                        text=str(exc),
                    )
                try:
                    self._send(rpc.REPLY, seq, reply)
                except (BrokenPipeError, OSError):
                    return
                if isinstance(message, Shutdown):
                    return
        finally:
            self._storage.close()
            try:
                self._conn.close()
            except OSError:
                pass


def serve(conn, name: str, config: Optional[DcConfig], journal_path: str) -> None:
    """Child-process entry point (target of ``multiprocessing.Process``)."""
    _DcServer(conn, name, config, journal_path).run()
