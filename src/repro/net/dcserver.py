"""The DC server: one data component living in its own OS process.

:func:`serve` is the child-process entry point.  It opens (and replays)
the DC's journal volume, builds an ordinary
:class:`~repro.dc.data_component.DataComponent` on top, announces itself
with a :class:`~repro.net.rpc.Hello` push, then runs a single-threaded
request loop:

- §4.2.1 data/control messages (``PerformOperation``, ``BatchedPerform``,
  EOSL/LWM/checkpoint/restart traffic) dispatch to ``dc.handle`` exactly
  as the in-process transport would;
- the small control plane of :mod:`repro.net.rpc` (register, catalog,
  stats, shutdown) is served here;
- the **causality gate** is bridged: when a DC system transaction needs
  the TC log forced (Section 4.2.2), the server sends a
  ``SERVER_REQUEST`` ``ForceLogRequest`` on the connection that
  registered that TC and blocks until the matching ``CLIENT_REPLY``
  arrives, stashing any pipelined requests that land in between into that
  connection's inbox, which the main loop drains afterwards.

**Connections.**  The parent pipe is always served.  With ``listen_path``
set, the server additionally binds a Unix-domain socket and serves every
accepted connection through the same loop — this is how TC *server*
processes (docs/architecture.md §16) share one DC process as a pool:
each TC process connects to each DC's socket, registers its tc_id, and
speaks the identical protocol the parent pipe speaks.  One DC, many TCs,
one event loop — Section 6's multi-TC sharing made out-of-process.

Single-threadedness is deliberate: one DC process is one core's worth of
DC work (the scale-out unit is the *process*), and it keeps the server's
view of request order identical to arrival order.  Parallelism comes from
running many DC processes, which is the point of the deployment mode.

If the parent dies (EOF on the pipe), the server exits; EOF on an
accepted connection just drops that client (a kill -9'd TC must not take
the shared DC down with it).  If the parent SIGKILLs the server, the
journal's flushed frames survive in the OS page cache and the next
:func:`serve` on the same path replays them — the real-death analogue of
the in-memory store's crash separation.
"""

from __future__ import annotations

import itertools
import os
import socket
from collections import deque
from multiprocessing.connection import Connection, wait
from typing import Optional

from repro.common.api import ControlAck, Message
from repro.common.config import DcConfig
from repro.common.errors import CrashedError, ReproError
from repro.dc.data_component import DataComponent
from repro.net import rpc, wire
from repro.net.journal import JournalStorage
from repro.net.rpc import (
    CheckpointDcLog,
    CheckpointDcLogReply,
    CreateTable,
    ForceLogReply,
    ForceLogRequest,
    Hello,
    NegotiateCodec,
    RegisterTc,
    RemoteError,
    RsspHint,
    Shutdown,
    StatsReply,
    StatsRequest,
    TableList,
    TableListReply,
)


def bind_unix_listener(path: str) -> socket.socket:
    """Bind a Unix-domain listener, replacing any stale socket file.

    A kill -9'd server leaves its socket path behind; the respawned server
    must be able to re-bind the same address so clients reconnect without
    renegotiating paths.
    """
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)
    return listener


def bind_listener(address: str) -> tuple[socket.socket, str]:
    """Bind a listener for ``tcp://host:port`` or a Unix socket path.

    Returns ``(listener, resolved_address)``: a TCP bind on port 0 picks
    an ephemeral port, and the resolved address (quoted back to clients
    in the Hello) carries the concrete one.  ``SO_REUSEADDR`` lets a
    respawned server re-bind the same port after a kill -9, the same
    contract :func:`bind_unix_listener` gives via unlink-and-rebind.
    """
    if address.startswith("tcp://"):
        host, _, port = address[len("tcp://"):].rpartition(":")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host or "127.0.0.1", int(port)))
        listener.listen(16)
        bound_host, bound_port = listener.getsockname()[:2]
        return listener, f"tcp://{bound_host}:{bound_port}"
    return bind_unix_listener(address), address


def connect_unix(path: str) -> Connection:
    """Connect to a server socket, framed like a ``multiprocessing`` pipe."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    return Connection(sock.detach())


def connect_any(address: str) -> Connection:
    """Connect to ``tcp://host:port`` or a Unix socket path.

    TCP connections set ``TCP_NODELAY``: the transport already coalesces
    frames application-side, so Nagle buying latency for nothing is the
    wrong trade on this data plane.
    """
    if address.startswith("tcp://"):
        host, _, port = address[len("tcp://"):].rpartition(":")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((host or "127.0.0.1", int(port)))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Connection(sock.detach())
    return connect_unix(address)


class _DcServer:
    def __init__(
        self,
        conn,
        name: str,
        config: Optional[DcConfig],
        journal_path: str,
        listen_path: str = "",
        fast_codec: bool = True,
    ):
        self._parent = conn
        #: Advertise (and accept) the fast-path codec.  Off simulates a
        #: tagged-only peer: the server then encodes tagged and never
        #: enables fast replies, but still *decodes* fast frames — the
        #: decoder is version-bound, not knob-bound.
        self._fast_ok = fast_codec
        #: Per-connection negotiated encode maps (empty until that client
        #: sends NegotiateCodec); replies to a tagged-only client stay
        #: tagged forever.
        self._fast: dict[object, dict] = {}
        self._scratch = bytearray()
        self._storage = JournalStorage(journal_path)
        self._dc = DataComponent(
            name, config=config, metrics=self._storage.metrics, storage=self._storage
        )
        self._recovered = False
        if self._storage.replayed:
            # A previous incarnation wrote this volume: rebuild structures
            # from the stable catalog before accepting any traffic.  The
            # TC-side redo prompt is driven by the client after reconnect.
            self._dc.recover(notify_tcs=False)
            self._recovered = True
        self._conns: list = [conn]
        #: Per-connection frames received while blocked inside a force-log
        #: bridge on that connection.
        self._inboxes: dict = {conn: deque()}
        #: Which connection registered each TC (the bridge target).
        self._tc_conns: dict[int, object] = {}
        self._listener: Optional[socket.socket] = None
        self.listen_addr = ""
        if listen_path:
            self._listener, self.listen_addr = bind_listener(listen_path)
        self._sreq_seq = itertools.count(1)

    # -- framing ------------------------------------------------------------

    def _send(self, conn, kind: int, seq: int, payload: object) -> None:
        conn.send_bytes(
            rpc.pack_frame(kind, seq, payload, self._fast.get(conn), self._scratch)
        )

    # -- the causality-gate bridge -----------------------------------------

    def _force_bridge(self, tc_id: int):
        def force(lsn):
            # Looked up at call time: a re-registered TC (respawned
            # process, new connection) re-aims the bridge automatically.
            conn = self._tc_conns.get(tc_id)
            if conn is None or conn not in self._inboxes:
                raise CrashedError(f"TC {tc_id} force-log channel")
            seq = next(self._sreq_seq)
            try:
                self._send(
                    conn, rpc.SERVER_REQUEST, seq, ForceLogRequest(tc_id=tc_id, lsn=lsn)
                )
                while True:
                    kind, rseq, payload = rpc.unpack_frame(conn.recv_bytes())
                    if kind == rpc.CLIENT_REPLY and rseq == seq:
                        if isinstance(payload, ForceLogReply):
                            return payload.eosl
                        return lsn
                    # A pipelined client request raced the reply; serve it
                    # after the gate clears (arrival order is preserved).
                    self._inboxes[conn].append((kind, rseq, payload))
            except (EOFError, BrokenPipeError, OSError):
                self._drop_conn(conn)
                raise CrashedError(f"TC {tc_id} force-log channel")

        return force

    def _push_hint(self, dc_name: str, lsn: int) -> None:
        # Spontaneous-stability hints go to every connection that holds a
        # registration (the parent, if none do) — each client fans the
        # hint out to its own registrations.
        targets = set(self._tc_conns.values()) or {self._parent}
        for conn in targets:
            if conn not in self._inboxes:
                continue
            try:
                self._send(conn, rpc.PUSH, 0, RsspHint(tc_id=0, dc_name=dc_name, lsn=lsn))
            except (BrokenPipeError, OSError):
                self._drop_conn(conn)

    # -- connection lifecycle ----------------------------------------------

    def _adopt(self, conn) -> None:
        self._conns.append(conn)
        self._inboxes[conn] = deque()
        try:
            self._send(conn, rpc.PUSH, 0, self._hello())
        except (BrokenPipeError, OSError):
            self._drop_conn(conn)

    def _drop_conn(self, conn) -> None:
        if conn in self._inboxes:
            self._conns.remove(conn)
            del self._inboxes[conn]
        self._fast.pop(conn, None)
        for tc_id, owner in list(self._tc_conns.items()):
            if owner is conn:
                del self._tc_conns[tc_id]
        try:
            conn.close()
        except OSError:
            pass

    # -- dispatch -----------------------------------------------------------

    def _catalog(self) -> tuple:
        tables = []
        for name in self._dc.table_names():
            handle = self._dc.table(name)
            tables.append(
                (name, handle.descriptor.kind, handle.descriptor.versioned)
            )
        return tuple(tables)

    def _hello(self) -> Hello:
        return Hello(
            tc_id=0,
            dc_name=self._dc.name,
            pid=os.getpid(),
            recovered=self._recovered,
            tables=self._catalog(),
            fast_codec=wire.fast_vocabulary() if self._fast_ok else (),
            listen_addr=self.listen_addr,
        )

    def _dispatch(self, conn, message: Message) -> Optional[Message]:
        if isinstance(message, NegotiateCodec):
            if self._fast_ok:
                self._fast[conn] = wire.negotiate(message.vocab)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, RegisterTc):
            self._tc_conns[message.tc_id] = conn
            self._dc.register_tc(
                message.tc_id,
                force_log=self._force_bridge(message.tc_id),
                on_rssp_hint=self._push_hint,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, CreateTable):
            self._dc.create_table(
                message.name,
                kind=message.kind,
                versioned=message.versioned,
                bucket_count=message.bucket_count,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, TableList):
            return TableListReply(tc_id=message.tc_id, tables=self._catalog())
        if isinstance(message, StatsRequest):
            return StatsReply(
                tc_id=message.tc_id,
                payload={
                    "dc": self._dc.stats(),
                    "counters": self._dc.metrics.counters(),
                    "pid": os.getpid(),
                    "recovered": self._recovered,
                    "journal_bytes": self._storage.journal_bytes(),
                    "connections": len(self._conns),
                },
            )
        if isinstance(message, CheckpointDcLog):
            advanced = self._dc.checkpoint_dc_log()
            if advanced:
                # Everything below the new truncation point is reflected
                # in flushed pages, so the journal's history frames are
                # dead weight: rewrite it as live state.  A kill -9'd DC
                # now replays only the live tail, not its whole past.
                self._storage.compact()
            return CheckpointDcLogReply(tc_id=message.tc_id, advanced=advanced)
        if isinstance(message, Shutdown):
            return ControlAck(tc_id=message.tc_id)
        return self._dc.handle(message)

    def _serve_frame(self, conn, kind: int, seq: int, message) -> bool:
        """Serve one frame; returns False when the server should exit."""
        if kind != rpc.REQUEST:
            return True  # stray frame (e.g. a stale CLIENT_REPLY)
        try:
            reply = self._dispatch(conn, message)
        except CrashedError:
            # The in-process transport maps a crashed component to a lost
            # message; mirror that so the client's resend policy engages.
            reply = None
        except ReproError as exc:
            reply = RemoteError(
                tc_id=getattr(message, "tc_id", 0),
                kind=type(exc).__name__,
                text=str(exc),
            )
        try:
            self._send(conn, rpc.REPLY, seq, reply)
        except (BrokenPipeError, OSError):
            self._drop_conn(conn)
            return conn is not self._parent
        if isinstance(message, Shutdown):
            if conn is self._parent:
                return False
            self._drop_conn(conn)  # a client said goodbye; keep serving
        return True

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        self._send(self._parent, rpc.PUSH, 0, self._hello())
        try:
            while True:
                # Frames stashed while a force-log bridge was blocked come
                # first: they arrived before anything currently buffered.
                progressed = True
                while progressed:
                    progressed = False
                    for conn in list(self._conns):
                        inbox = self._inboxes.get(conn)
                        while inbox:
                            progressed = True
                            kind, seq, message = inbox.popleft()
                            if not self._serve_frame(conn, kind, seq, message):
                                return
                waitables = list(self._conns)
                if self._listener is not None:
                    waitables.append(self._listener)
                for ready in wait(waitables):
                    if ready is self._listener:
                        client, _addr = self._listener.accept()
                        if client.family == socket.AF_INET:
                            client.setsockopt(
                                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                            )
                        self._adopt(Connection(client.detach()))
                        continue
                    try:
                        kind, seq, message = rpc.unpack_frame(ready.recv_bytes())
                    except (EOFError, OSError):
                        if ready is self._parent:
                            return  # parent is gone; nothing to serve
                        self._drop_conn(ready)
                        continue
                    if not self._serve_frame(ready, kind, seq, message):
                        return
        finally:
            self._storage.close()
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            for conn in list(self._conns):
                try:
                    conn.close()
                except OSError:
                    pass


def serve(
    conn,
    name: str,
    config: Optional[DcConfig],
    journal_path: str,
    listen_path: str = "",
    fast_codec: bool = True,
) -> None:
    """Child-process entry point (target of ``multiprocessing.Process``)."""
    _DcServer(conn, name, config, journal_path, listen_path, fast_codec).run()
