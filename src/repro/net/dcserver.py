"""The DC server: one data component living in its own OS process.

:func:`serve` is the child-process entry point.  It opens (and replays)
the DC's journal volume, builds an ordinary
:class:`~repro.dc.data_component.DataComponent` on top, announces itself
with a :class:`~repro.net.rpc.Hello` push, then serves every connection
through one :class:`~repro.net.eventloop.EventLoop`:

- §4.2.1 data/control messages (``PerformOperation``, ``BatchedPerform``,
  EOSL/LWM/checkpoint/restart traffic) dispatch to ``dc.handle`` exactly
  as the in-process transport would;
- the small control plane of :mod:`repro.net.rpc` (register, catalog,
  stats, shm attach, shutdown) is served here;
- the **causality gate** is bridged: when a DC system transaction needs
  the TC log forced (Section 4.2.2), the server sends a
  ``SERVER_REQUEST`` ``ForceLogRequest`` on the connection that
  registered that TC and *pumps the event loop* until the matching
  ``CLIENT_REPLY`` arrives — request frames that land meanwhile (on any
  connection) backlog in arrival order, while reads, writes, accepts and
  ring traffic on every other connection keep flowing.

**Connections.**  The parent pipe is always served.  With ``listen_path``
set, the server additionally binds a Unix-domain or TCP listener and
serves every accepted connection through the same loop — this is how TC
*server* processes (docs/architecture.md §16) share one DC process as a
pool.  A client may also attach a shared-memory ring pair
(:class:`~repro.net.rpc.AttachShm`, :mod:`repro.net.shm`) and ride small
frames on a cross-process memcpy instead of the pipe.  One DC, many TCs,
one event loop — Section 6's multi-TC sharing made out-of-process, with
the server's thread count O(1) in the number of clients.

Single-threadedness is deliberate: one DC process is one core's worth of
DC work (the scale-out unit is the *process*), and it keeps the server's
view of request order identical to arrival order.  Parallelism comes from
running many DC processes, which is the point of the deployment mode.

If the parent dies (EOF on the pipe), the server exits; EOF on an
accepted connection just drops that client (a kill -9'd TC must not take
the shared DC down with it).  A malformed frame likewise drops only the
connection that sent it.  If the parent SIGKILLs the server, the
journal's flushed frames survive in the OS page cache and the next
:func:`serve` on the same path replays them — the real-death analogue of
the in-memory store's crash separation.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from collections import deque
from multiprocessing.connection import Connection
from typing import Optional

from repro.common.api import ControlAck, Message
from repro.common.config import DcConfig
from repro.common.errors import CrashedError, ReproError
from repro.dc.data_component import DataComponent
from repro.net import rpc, wire
from repro.net.eventloop import EventLoop, Peer
from repro.net.journal import JournalStorage
from repro.net.rpc import (
    AttachShm,
    CheckpointDcLog,
    CheckpointDcLogReply,
    CreateTable,
    ForceLogReply,
    ForceLogRequest,
    Hello,
    NegotiateCodec,
    RegisterTc,
    RemoteError,
    RsspHint,
    Shutdown,
    StatsReply,
    StatsRequest,
    TableList,
    TableListReply,
)
from repro.net.shm import ShmLink


def bind_unix_listener(path: str) -> socket.socket:
    """Bind a Unix-domain listener, replacing any stale socket file.

    A kill -9'd server leaves its socket path behind; the respawned server
    must be able to re-bind the same address so clients reconnect without
    renegotiating paths.
    """
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)
    return listener


def bind_listener(address: str) -> tuple[socket.socket, str]:
    """Bind a listener for ``tcp://host:port`` or a Unix socket path.

    Returns ``(listener, resolved_address)``: a TCP bind on port 0 picks
    an ephemeral port, and the resolved address (quoted back to clients
    in the Hello) carries the concrete one.  ``SO_REUSEADDR`` lets a
    respawned server re-bind the same port after a kill -9, the same
    contract :func:`bind_unix_listener` gives via unlink-and-rebind.
    """
    if address.startswith("tcp://"):
        host, _, port = address[len("tcp://"):].rpartition(":")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host or "127.0.0.1", int(port)))
        listener.listen(16)
        bound_host, bound_port = listener.getsockname()[:2]
        return listener, f"tcp://{bound_host}:{bound_port}"
    return bind_unix_listener(address), address


def connect_unix(path: str) -> Connection:
    """Connect to a server socket, framed like a ``multiprocessing`` pipe."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    return Connection(sock.detach())


def connect_any(address: str) -> Connection:
    """Connect to ``tcp://host:port`` or a Unix socket path.

    TCP connections set ``TCP_NODELAY``: the transport already coalesces
    frames application-side, so Nagle buying latency for nothing is the
    wrong trade on this data plane.
    """
    if address.startswith("tcp://"):
        host, _, port = address[len("tcp://"):].rpartition(":")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((host or "127.0.0.1", int(port)))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Connection(sock.detach())
    return connect_unix(address)


class _DcServer:
    def __init__(
        self,
        conn,
        name: str,
        config: Optional[DcConfig],
        journal_path: str,
        listen_path: str = "",
        fast_codec: bool = True,
    ):
        self._parent_conn = conn
        #: Advertise (and accept) the fast-path codec.  Off simulates a
        #: tagged-only peer: the server then encodes tagged and never
        #: enables fast replies, but still *decodes* fast frames — the
        #: decoder is version-bound, not knob-bound.
        self._fast_ok = fast_codec
        #: Per-connection negotiated encode maps (empty until that client
        #: sends NegotiateCodec); replies to a tagged-only client stay
        #: tagged forever.
        self._fast: dict[Peer, dict] = {}
        self._scratch = bytearray()
        self._storage = JournalStorage(journal_path)
        self._dc = DataComponent(
            name, config=config, metrics=self._storage.metrics, storage=self._storage
        )
        self._recovered = False
        if self._storage.replayed:
            # A previous incarnation wrote this volume: rebuild structures
            # from the stable catalog before accepting any traffic.  The
            # TC-side redo prompt is driven by the client after reconnect.
            self._dc.recover(notify_tcs=False)
            self._recovered = True
        self._loop = EventLoop(self._dc.metrics)
        #: Which peer registered each TC (the force-log bridge target).
        self._tc_peers: dict[int, Peer] = {}
        #: seq -> reply box for force bridges pumping inside the loop.
        self._force_boxes: dict[int, list] = {}
        #: Frames decoded but not yet dispatched: everything delivered
        #: while a dispatch (or a force bridge pumping inside one) is on
        #: the stack lands here and is served strictly in arrival order.
        self._backlog: deque = deque()
        self._dispatching = False
        self._listener: Optional[socket.socket] = None
        self.listen_addr = ""
        if listen_path:
            self._listener, self.listen_addr = bind_listener(listen_path)
        self._sreq_seq = itertools.count(1)
        self._parent_peer = self._loop.adopt(
            conn, self._on_frame, self._on_parent_close
        )
        if self._listener is not None:
            self._loop.add_listener(self._listener, self._on_accept)

    # -- framing ------------------------------------------------------------

    def _send(self, peer: Peer, kind: int, seq: int, payload: object) -> None:
        peer.send_frame(
            rpc.pack_frame(kind, seq, payload, self._fast.get(peer), self._scratch)
        )

    # -- the causality-gate bridge -----------------------------------------

    def _force_bridge(self, tc_id: int):
        def force(lsn):
            # Looked up at call time: a re-registered TC (respawned
            # process, new connection) re-aims the bridge automatically.
            peer = self._tc_peers.get(tc_id)
            if peer is None or peer.closed:
                raise CrashedError(f"TC {tc_id} force-log channel")
            seq = next(self._sreq_seq)
            box: list = []
            self._force_boxes[seq] = box
            try:
                try:
                    self._send(
                        peer,
                        rpc.SERVER_REQUEST,
                        seq,
                        ForceLogRequest(tc_id=tc_id, lsn=lsn),
                    )
                except (BrokenPipeError, OSError):
                    raise CrashedError(f"TC {tc_id} force-log channel")
                # The event-loop-scheduled wait: every other connection
                # keeps being served (their requests backlog in arrival
                # order); a dead TC surfaces as EOF -> peer.closed.
                self._loop.pump_until(lambda: bool(box) or peer.closed)
                if not box:
                    raise CrashedError(f"TC {tc_id} force-log channel")
                payload = box[0]
                if isinstance(payload, ForceLogReply):
                    return payload.eosl
                return lsn
            finally:
                self._force_boxes.pop(seq, None)

        return force

    def _push_hint(self, dc_name: str, lsn: int) -> None:
        # Spontaneous-stability hints go to every connection that holds a
        # registration (the parent, if none do) — each client fans the
        # hint out to its own registrations.
        targets = set(self._tc_peers.values()) or {self._parent_peer}
        for peer in targets:
            if peer.closed:
                continue
            try:
                self._send(
                    peer, rpc.PUSH, 0, RsspHint(tc_id=0, dc_name=dc_name, lsn=lsn)
                )
            except (BrokenPipeError, OSError):
                self._loop.close_peer(peer)

    # -- connection lifecycle ----------------------------------------------

    def _on_accept(self, sock: socket.socket) -> None:
        peer = self._loop.adopt(sock, self._on_frame, self._on_peer_close)
        try:
            self._send(peer, rpc.PUSH, 0, self._hello())
        except (BrokenPipeError, OSError):
            self._loop.close_peer(peer)

    def _on_peer_close(self, peer: Peer) -> None:
        self._fast.pop(peer, None)
        for tc_id, owner in list(self._tc_peers.items()):
            if owner is peer:
                del self._tc_peers[tc_id]

    def _on_parent_close(self, peer: Peer) -> None:
        self._on_peer_close(peer)
        self._loop.stop()  # parent is gone; nothing to serve

    # -- dispatch -----------------------------------------------------------

    def _catalog(self) -> tuple:
        tables = []
        for name in self._dc.table_names():
            handle = self._dc.table(name)
            tables.append(
                (name, handle.descriptor.kind, handle.descriptor.versioned)
            )
        return tuple(tables)

    def _hello(self) -> Hello:
        return Hello(
            tc_id=0,
            dc_name=self._dc.name,
            pid=os.getpid(),
            recovered=self._recovered,
            tables=self._catalog(),
            fast_codec=wire.fast_vocabulary() if self._fast_ok else (),
            listen_addr=self.listen_addr,
        )

    def _dispatch(self, peer: Peer, message: Message) -> Optional[Message]:
        if isinstance(message, NegotiateCodec):
            if self._fast_ok:
                self._fast[peer] = wire.negotiate(message.vocab)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, AttachShm):
            link = ShmLink.attach(message.c2s_name, message.s2c_name)
            self._loop.attach_shm(
                peer, link, message.spin, message.park_ms / 1000.0
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, RegisterTc):
            self._tc_peers[message.tc_id] = peer
            self._dc.register_tc(
                message.tc_id,
                force_log=self._force_bridge(message.tc_id),
                on_rssp_hint=self._push_hint,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, CreateTable):
            self._dc.create_table(
                message.name,
                kind=message.kind,
                versioned=message.versioned,
                bucket_count=message.bucket_count,
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, TableList):
            return TableListReply(tc_id=message.tc_id, tables=self._catalog())
        if isinstance(message, StatsRequest):
            return StatsReply(
                tc_id=message.tc_id,
                payload={
                    "dc": self._dc.stats(),
                    "counters": self._dc.metrics.counters(),
                    "pid": os.getpid(),
                    "recovered": self._recovered,
                    "journal_bytes": self._storage.journal_bytes(),
                    "connections": len(self._loop._peers),
                    # The many-clients scaling claim, measurable from the
                    # outside: the loop serves every client, so this stays
                    # flat as connections grow.
                    "threads": threading.active_count(),
                },
            )
        if isinstance(message, CheckpointDcLog):
            advanced = self._dc.checkpoint_dc_log()
            if advanced:
                # Everything below the new truncation point is reflected
                # in flushed pages, so the journal's history frames are
                # dead weight: rewrite it as live state.  A kill -9'd DC
                # now replays only the live tail, not its whole past.
                self._storage.compact()
            return CheckpointDcLogReply(tc_id=message.tc_id, advanced=advanced)
        if isinstance(message, Shutdown):
            return ControlAck(tc_id=message.tc_id)
        return self._dc.handle(message)

    # -- frame plumbing ------------------------------------------------------

    def _on_frame(self, peer: Peer, data: bytes) -> None:
        try:
            kind, seq, message = rpc.unpack_frame(data)
        except wire.WireError:
            # One client speaking garbage must not take the server (or
            # anyone else's connection) down with it.
            self._dc.metrics.incr("dcserver.bad_frames")
            self._loop.close_peer(peer)
            return
        if kind == rpc.DOORBELL:
            return  # the pipe write itself was the wakeup
        if kind == rpc.CLIENT_REPLY:
            box = self._force_boxes.get(seq)
            if box is not None:
                box.append(message)
            return  # unmatched = stale reply from a dropped bridge
        self._backlog.append((peer, kind, seq, message))
        self._drain_backlog()

    def _drain_backlog(self) -> None:
        if self._dispatching:
            return  # the frame arrived inside a dispatch; served after it
        self._dispatching = True
        try:
            while self._backlog:
                peer, kind, seq, message = self._backlog.popleft()
                if peer.closed:
                    continue
                if not self._serve_frame(peer, kind, seq, message):
                    self._loop.stop()
                    return
        finally:
            self._dispatching = False

    def _serve_frame(self, peer: Peer, kind: int, seq: int, message) -> bool:
        """Serve one frame; returns False when the server should exit."""
        if kind != rpc.REQUEST:
            return True  # stray frame (e.g. a stale SERVER_REQUEST echo)
        try:
            reply = self._dispatch(peer, message)
        except CrashedError:
            # The in-process transport maps a crashed component to a lost
            # message; mirror that so the client's resend policy engages.
            reply = None
        except ReproError as exc:
            reply = RemoteError(
                tc_id=getattr(message, "tc_id", 0),
                kind=type(exc).__name__,
                text=str(exc),
            )
        try:
            self._send(peer, rpc.REPLY, seq, reply)
        except (BrokenPipeError, OSError):
            self._loop.close_peer(peer)
            return peer is not self._parent_peer
        if isinstance(message, Shutdown):
            if peer is self._parent_peer:
                return False
            self._loop.close_peer(peer)  # a client said goodbye; keep serving
        return True

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        try:
            self._send(self._parent_peer, rpc.PUSH, 0, self._hello())
            self._loop.run()
        finally:
            self._storage.close()
            self._loop.close()


def serve(
    conn,
    name: str,
    config: Optional[DcConfig],
    journal_path: str,
    listen_path: str = "",
    fast_codec: bool = True,
) -> None:
    """Child-process entry point (target of ``multiprocessing.Process``)."""
    _DcServer(conn, name, config, journal_path, listen_path, fast_codec).run()
