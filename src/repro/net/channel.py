"""The TC <-> DC transport (Section 4.2.1: "asynchronous messages ...").

The paper treats the unbundled kernel as a distributed system: requests
flow one way, replies the other, and the network may delay, reorder,
duplicate or drop either.  :class:`MessageChannel` simulates exactly that
against a local :class:`~repro.dc.data_component.DataComponent`:

- **synchronous fast path** — with a perfectly-behaved channel, requests
  are delivered inline (the "signals and shared variables ... multi-core
  design" deployment);
- **queued mode** — requests accumulate and :meth:`pump` delivers them with
  seeded reordering / loss / duplication, which is what exercises the
  abLSN out-of-order machinery (Section 5.1) and the resend/idempotence
  contracts end to end.

A per-message latency cost is accumulated into simulated-time metrics so
cloud experiments can charge round trips without real sleeping.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.common.api import BatchedPerform, Message, OperationReply, PerformOperation
from repro.common.config import ChannelConfig
from repro.common.errors import CrashedError
from repro.dc.data_component import DataComponent
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.faults import FaultInjector


class MessageChannel:
    """One ordered-by-default channel between a TC and a DC."""

    #: Channels that can pipeline (send now, complete the reply future out
    #: of order) advertise True and implement ``request_async`` /
    #: ``finish_async`` — see :class:`repro.net.process.ProcessChannel`.
    supports_async = False

    def __init__(
        self,
        dc: DataComponent,
        config: Optional[ChannelConfig] = None,
        metrics: Optional[Metrics] = None,
        name: str = "",
        faults: Optional["FaultInjector"] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.dc = dc
        self.config = config or ChannelConfig()
        self.metrics = metrics or Metrics()
        self.name = name or f"chan->{dc.name}"
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if not self.tracer.enabled and type(self).request is MessageChannel.request:
            # No tracing: requests dispatch straight to the untraced body.
            self.request = self._request
        self._rng = random.Random(self.config.seed)
        self._outbox: list[Message] = []
        self.sim_time_ms = 0.0
        #: Per-channel counters (cloud experiments diff these to count how
        #: many machines a workload touched with actual data operations).
        self.requests_sent = 0
        self.ops_sent = 0
        # Hot-path bindings: counter slots and config scalars resolved once
        # so the per-request path does no dict/attr chains (satellite of the
        # FIG1 fast-path work; profile with ``python -m repro trace``).
        self._requests_slot = self.metrics.counter("channel.requests")
        self._batches_slot = self.metrics.counter("channel.batches")
        self._batched_ops_slot = self.metrics.counter("channel.batched_ops")
        self._latency_ms = self.config.latency_ms

    @property
    def well_behaved(self) -> bool:
        """True when the channel neither loses, duplicates nor reorders."""
        cfg = self.config
        return (
            cfg.loss_rate == 0.0
            and cfg.duplicate_rate == 0.0
            and cfg.reorder_window == 0
        )

    # -- synchronous path ---------------------------------------------------

    def request(self, message: Message) -> Optional[Message]:
        """Deliver one message now; returns the reply (or None).

        Misbehavior still applies: a "lost" request or reply returns None,
        and the caller's resend logic takes over.  ``CrashedError`` from a
        crashed DC is surfaced as a lost message plus a flag the TC can
        inspect via :attr:`dc`.
        """
        op_id = getattr(message, "op_id", None)
        with self.tracer.span(
            "channel.send",
            component=self.name,
            request_id=op_id,
            kind=type(message).__name__,
            op_id=op_id,
            resend=bool(getattr(message, "resend", False)),
        ) as span:
            reply = self._request(message)
            if reply is None:
                span.tags["lost"] = True
            return reply

    def _note_request(self, message: Message) -> None:
        """Per-request accounting, shared by every transport."""
        self._requests_slot.value += 1
        self.requests_sent += 1
        kind = type(message)
        if kind is PerformOperation:
            self.ops_sent += 1
        elif kind is BatchedPerform:
            # One wire message, many operations: the amplification win the
            # FIG1 optimized series measures.
            count = len(message.ops)
            self.ops_sent += count
            self._batches_slot.value += 1
            self._batched_ops_slot.value += count

    def _request(self, message: Message) -> Optional[Message]:
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(
                YieldPoint.CHANNEL_SEND, self.dc.name, kind=type(message).__name__
            )
        self._note_request(message)
        self._charge_latency()
        if self._fault_lost("send"):
            self.metrics.incr("channel.requests_lost")
            return None
        if self._drop():
            self.metrics.incr("channel.requests_lost")
            return None
        try:
            reply = self.dc.handle(message)
        except CrashedError:
            self.metrics.incr("channel.requests_to_crashed_dc")
            return None
        if self._duplicate():
            self.metrics.incr("channel.requests_duplicated")
            self._charge_latency()  # the duplicate is its own trip on the wire
            try:
                self.dc.handle(message)  # idempotence absorbs the duplicate
            except CrashedError:
                pass
        if reply is None:
            return None
        self._charge_latency()
        if self._fault_lost("recv"):
            self.metrics.incr("channel.replies_lost")
            return None
        if self._drop():
            self.metrics.incr("channel.replies_lost")
            return None
        if _sched.ACTIVE is not None:
            _sched.maybe_yield(
                YieldPoint.CHANNEL_RECV, self.dc.name, kind=type(reply).__name__
            )
        return reply

    # -- queued (reordering) path ----------------------------------------------

    def post(self, message: Message) -> None:
        """Queue a request for a later :meth:`pump`."""
        self.metrics.incr("channel.posted")
        self._outbox.append(message)

    def pending(self) -> int:
        return len(self._outbox)

    def pump(self) -> list[Message]:
        """Deliver all queued requests, possibly reordered, return replies.

        Reordering: each message may be displaced up to ``reorder_window``
        positions (seeded, deterministic).  Within-flight reordering of
        *non-conflicting* operations is exactly what the TC permits and the
        DC's abLSNs must absorb (Section 5.1).
        """
        batch = self._outbox
        self._outbox = []
        order = self._reorder(list(range(len(batch))))
        replies: list[Message] = []
        for index in order:
            reply = self.request(batch[index])
            if reply is None:
                continue
            replies.append(reply)
            if self._duplicate():
                # The reply leg misbehaves independently of the request leg:
                # a duplicated reply arrives twice (its own trip on the wire)
                # and the TC's reply handling must absorb it.
                self.metrics.incr("channel.replies_duplicated")
                self._charge_latency()
                replies.append(reply)
        if order != sorted(order):
            self.metrics.incr("channel.batches_reordered")
        return replies

    def _reorder(self, indexes: list[int]) -> list[int]:
        window = self.config.reorder_window
        if window <= 0 or len(indexes) < 2:
            return indexes
        result = list(indexes)
        for position in range(len(result)):
            jump = self._rng.randint(0, min(window, len(result) - 1 - position))
            if jump:
                item = result.pop(position + jump)
                result.insert(position, item)
        return result

    # -- misbehavior ------------------------------------------------------------------

    def _fault_lost(self, leg: str) -> bool:
        """Consult the fault injector for one wire leg; True = message lost.

        A ``delay`` outcome charges the spike to simulated time and lets the
        message through; ``drop``/``partition`` lose it; a ``crash`` rule
        fail-stops the target component mid-flight, which also loses the
        message (the caller's resend logic then observes the crash).
        """
        if self.faults is None:
            return False
        from repro.sim.faults import FaultAction, FaultPoint

        point = FaultPoint.CHANNEL_SEND if leg == "send" else FaultPoint.CHANNEL_RECV
        try:
            outcome = self.faults.hit(point, self.dc.name)
        except CrashedError:
            self.metrics.incr("channel.requests_to_crashed_dc")
            return True
        if outcome is None:
            return False
        if outcome.action == FaultAction.DELAY:
            self.sim_time_ms += outcome.delay_ms
            self.metrics.observe("channel.fault_delay_ms", outcome.delay_ms)
            return False
        return True

    def _drop(self) -> bool:
        return self.config.loss_rate > 0 and self._rng.random() < self.config.loss_rate

    def _duplicate(self) -> bool:
        return (
            self.config.duplicate_rate > 0
            and self._rng.random() < self.config.duplicate_rate
        )

    def _charge_latency(self) -> None:
        latency = self._latency_ms
        if latency:
            self.sim_time_ms += latency
            self.metrics.observe("channel.latency_ms", latency)


def build_channel(
    dc,
    config: Optional[ChannelConfig] = None,
    metrics: Optional[Metrics] = None,
    name: str = "",
    faults: Optional["FaultInjector"] = None,
    tracer: Optional[object] = None,
) -> MessageChannel:
    """Pick the channel implementation for a DC endpoint.

    An out-of-process DC (:class:`~repro.net.process.RemoteDc`) gets a
    :class:`~repro.net.process.ProcessChannel` over its pipe; anything
    else gets the simulated in-process :class:`MessageChannel`.  Keyed on
    the endpoint type, not on ``ChannelConfig.transport``, so a mixed
    deployment (some DCs local, some out-of-process) just works.
    """
    from repro.net.process import ProcessChannel, RemoteDc

    if isinstance(dc, RemoteDc):
        return ProcessChannel(
            dc, config, metrics, name=name, faults=faults, tracer=tracer
        )
    return MessageChannel(dc, config, metrics, name=name, faults=faults, tracer=tracer)
