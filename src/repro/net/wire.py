"""A compact, self-describing wire codec for the TC/DC message set.

The process deployment mode (docs/architecture.md §10) moves each DC into
its own OS process, so every :class:`~repro.common.api.Message` must cross
a real pipe as bytes.  This codec is deliberately *self-describing*: each
value carries a one-byte type tag, registered dataclasses are encoded as
``(type name, {field name: value})`` and enums as ``(type name, value)``.
That buys two properties the §4.2.1 contracts need:

- **version skew is loud, not silent** — decoding a frame that names an
  unknown message type raises :class:`UnknownTypeError`, and a known type
  carrying an unknown field raises :class:`UnknownFieldError` (both are
  :class:`WireDecodeError`).  A field the sender omitted simply takes the
  dataclass default, so adding a defaulted field is backward compatible.
- **no pickle on the request path** — frames can only decode into the
  registered message/operation vocabulary, never arbitrary objects.

Scalars use varints (zigzag for sign), so the common small ints (LSNs,
op ids) cost one or two bytes.  The sentinels ``TOMBSTONE`` / ``KEY_MIN`` /
``KEY_MAX`` get their own tags and decode back to the canonical singletons
— identity checks like ``value is TOMBSTONE`` keep working across the wire.

**The fast path** (docs/architecture.md §17).  Self-description is paid on
every hot-loop message: the type name and every field name travel as
strings, per frame.  The fast-path codec removes that for a fixed, ordered
vocabulary of hot types (:data:`_FAST_NAMES`): a compact numeric type id
plus *positional* field values, no name strings at all.  Which types may
be fast-encoded toward a peer is **negotiated at Hello time** — each side
advertises ``(id, name, field-signature)`` triples and only exact matches
are enabled — so a tagged-only or differently-versioned peer transparently
falls back to the tagged form, and a genuinely unknown type still raises
loudly.  Fast *frames* (:func:`encode_fast_frame`) carry a magic byte and
a CRC32 over the body: truncation or corruption is detected before any
positional decode is attempted, so a damaged frame raises
:class:`WireDecodeError` instead of decoding into the wrong message.
Decoding both forms is unconditional (version-bound, not negotiated);
only the *encoder* is gated by negotiation.

Registered out of the box: every ``Message`` subclass (including the
control-plane messages of :mod:`repro.net.rpc`), every
``LogicalOperation``, ``OpResult``/``RecordView`` and the enums they
embed.  Extensions register their own payload dataclasses with
:func:`register`.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
import zlib
from typing import Any, Optional

from repro.common.errors import ReproError

__all__ = [
    "WireError",
    "WireEncodeError",
    "WireDecodeError",
    "UnknownTypeError",
    "UnknownFieldError",
    "register",
    "registered_types",
    "encode",
    "decode",
    "FAST_MAGIC",
    "fast_vocabulary",
    "negotiate",
    "encode_fast_frame",
    "decode_fast_frame",
]


class WireError(ReproError):
    """Base class for codec failures."""


class WireEncodeError(WireError):
    """The value contains a type the codec does not speak."""


class WireDecodeError(WireError):
    """The frame is truncated, malformed or has trailing garbage."""


class UnknownTypeError(WireDecodeError):
    """The frame names a dataclass/enum this process has not registered."""


class UnknownFieldError(WireDecodeError):
    """A registered type arrived with a field this process does not know."""


# -- type tags ----------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_OBJ = 0x0C
_T_ENUM = 0x0D
_T_TOMBSTONE = 0x0E
_T_KEY_MIN = 0x0F
_T_KEY_MAX = 0x10
#: Fast-path forms: a negotiated numeric type id instead of name strings,
#: and positional instead of named fields.
_T_FOBJ = 0x11
_T_FENUM = 0x12

_FLOAT = struct.Struct(">d")

#: First byte of a fast frame.  Deliberately far outside the tag range a
#: tagged top-level value can start with, so the two frame forms are
#: distinguishable from byte 0.
FAST_MAGIC = 0xFA
_FAST_HEAD = struct.Struct("<BI")  # magic byte, crc32 of the body

# -- registry -----------------------------------------------------------------

_BY_NAME: dict[str, type] = {}
_FIELDS: dict[type, tuple[str, ...]] = {}
_FIELD_SETS: dict[type, frozenset] = {}
#: Memoized per-type byte tables (built once at register time): the tagged
#: object/enum headers and the per-field name strings that used to be
#: re-encoded on every single ``encode()`` call.
_OBJ_HEAD: dict[type, bytes] = {}
_FIELD_HEAD: dict[type, tuple[bytes, ...]] = {}
_ENUM_HEAD: dict[type, bytes] = {}
_bootstrapped = False

# Canonical sentinel singletons, bound at bootstrap (they live in
# repro.common.records; binding them here avoids a per-encode import).
_TOMBSTONE: Any = None
_KEY_MIN: Any = None
_KEY_MAX: Any = None


def _enc_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    out = bytearray()
    _put_uvarint(out, len(raw))
    return bytes(out) + raw


def register(cls: type) -> type:
    """Add a dataclass or enum to the wire vocabulary (idempotent).

    Names must be unique — the type name *is* the wire identifier.
    Usable as a decorator on extension payload types.
    """
    existing = _BY_NAME.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise WireError(
            f"wire name collision: {cls.__name__!r} already registered "
            f"for {existing!r}"
        )
    _BY_NAME[cls.__name__] = cls
    if dataclasses.is_dataclass(cls):
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELDS[cls] = names
        _FIELD_SETS[cls] = frozenset(names)
        head = bytearray([_T_OBJ])
        head += _enc_str(cls.__name__)
        _put_uvarint(head, len(names))
        _OBJ_HEAD[cls] = bytes(head)
        _FIELD_HEAD[cls] = tuple(_enc_str(name) for name in names)
    elif isinstance(cls, type) and issubclass(cls, enum.Enum):
        _ENUM_HEAD[cls] = bytes([_T_ENUM]) + _enc_str(cls.__name__)
    else:
        raise WireError(f"only dataclasses and enums can be registered: {cls!r}")
    return cls


def registered_types() -> dict[str, type]:
    """The current wire vocabulary (name -> type); bootstraps lazily."""
    _bootstrap()
    return dict(_BY_NAME)


def _walk_subclasses(base: type) -> None:
    for sub in base.__subclasses__():
        register(sub)
        _walk_subclasses(sub)


def _bootstrap() -> None:
    global _bootstrapped, _TOMBSTONE, _KEY_MIN, _KEY_MAX
    if _bootstrapped:
        return
    _bootstrapped = True
    # The control-plane messages are Message subclasses; import them first
    # so one subclass walk collects the whole vocabulary.
    import repro.net.rpc  # noqa: F401  (registers via the Message walk)
    import repro.net.tcrpc  # noqa: F401  (TC-service vocabulary, same walk)
    from repro.common import api, ops, records

    register(api.Message)
    _walk_subclasses(api.Message)
    _walk_subclasses(ops.LogicalOperation)
    register(ops.OpResult)
    register(ops.OpStatus)
    register(ops.ReadFlavor)
    register(records.RecordView)
    _TOMBSTONE = records.TOMBSTONE
    _KEY_MIN = records.KEY_MIN
    _KEY_MAX = records.KEY_MAX
    _build_fast_tables()


# -- the fast-path vocabulary -------------------------------------------------

#: The hot message set, in wire-id order (ids are 1-based positions).
#: APPEND ONLY — reordering or removing entries changes ids under existing
#: peers.  Negotiation tolerates drift (a mismatched entry is simply not
#: enabled), but stable ids keep homogeneous deployments fully fast.
_FAST_NAMES = (
    "PerformOperation",
    "OperationReply",
    "BatchedPerform",
    "BatchedReply",
    "OpResult",
    "RecordView",
    "OpStatus",
    "ReadFlavor",
    "InsertOp",
    "UpdateOp",
    "DeleteOp",
    "IncrementOp",
    "ReadOp",
    "RangeReadOp",
    "ProbeNextKeysOp",
    "PromoteVersionsOp",
    "DiscardVersionsOp",
    "EndOfStableLog",
    "LowWaterMark",
    "ControlAck",
    "RsspHint",
    "RedoComplete",
    "TxnBegin",
    "TxnBeginReply",
    "TxnWrite",
    "TxnAck",
    "TxnRead",
    "TxnReadReply",
    "TxnScan",
    "TxnScanReply",
    "TxnSync",
    "TxnCommit",
    "TxnAbort",
)

_FAST_BY_ID: dict[int, type] = {}
_FAST_SIG: dict[int, int] = {}
#: Pre-built ``tag | id | field-count`` / ``tag | id`` byte strings, one
#: per vocabulary type — the fast encoder appends one memoized object
#: instead of three varint writes per message.
_FAST_OBJ_HEAD: dict[type, bytes] = {}
_FAST_ENUM_HEAD: dict[type, bytes] = {}
#: Enum members are closed sets, so the fast forms memoize the *entire*
#: encoding per member and the value->member map per id — no
#: ``EnumMeta.__call__`` (decode) or ``.value`` descriptor (encode) on
#: the hot path.
_FAST_ENUM_BYTES: dict[object, bytes] = {}
_FAST_ENUM_MAP: dict[int, dict] = {}


def _signature(cls: type) -> int:
    """CRC32 over the type's field layout — the negotiation fingerprint.

    Two peers may only fast-encode a type to each other when name *and*
    signature agree, because positional decoding has no field names to
    reconcile schema drift with.  A drifted type falls back to the tagged
    form, where drift stays loud (UnknownFieldError) or absorbable
    (defaulted fields), exactly as before.
    """
    if cls in _FIELDS:
        return zlib.crc32(",".join(_FIELDS[cls]).encode("utf-8"))
    return zlib.crc32(
        ",".join(f"{m.name}={m.value!r}" for m in cls).encode("utf-8")
    )


def _build_fast_tables() -> None:
    if _FAST_BY_ID:
        return
    for idx, name in enumerate(_FAST_NAMES, start=1):
        cls = _BY_NAME.get(name)
        if cls is None:
            continue
        _FAST_BY_ID[idx] = cls
        _FAST_SIG[idx] = _signature(cls)
        # Memoized fast headers (valid while ids and field counts fit one
        # varint byte each — enforced here so the encoder may assume it).
        assert idx < 0x80, "fast vocabulary outgrew one-byte ids"
        if cls in _FIELDS:
            count = len(_FIELDS[cls])
            assert count < 0x80, f"{name} outgrew one-byte field counts"
            _FAST_OBJ_HEAD[cls] = bytes((_T_FOBJ, idx, count))
        else:
            head = bytes((_T_FENUM, idx))
            _FAST_ENUM_HEAD[cls] = head
            members: dict = {}
            for member in cls:
                scratch = bytearray()
                _encode(scratch, member.value, _NO_FAST)
                _FAST_ENUM_BYTES[member] = head + bytes(scratch)
                members[member.value] = member
            _FAST_ENUM_MAP[idx] = members


def fast_vocabulary() -> tuple:
    """The local fast vocabulary as ``(id, name, signature)`` triples —
    what Hello/TcHello advertise and :func:`negotiate` consumes."""
    _bootstrap()
    return tuple(
        (fid, cls.__name__, _FAST_SIG[fid])
        for fid, cls in sorted(_FAST_BY_ID.items())
    )


def negotiate(peer_vocabulary) -> dict[type, int]:
    """Intersect a peer's advertised vocabulary with the local one.

    Returns the encode map (type -> fast id) of exact matches — id, name
    and field signature must all agree.  An empty map means "speak tagged
    only", which is also what a malformed advertisement degrades to:
    negotiation can only ever *disable* fast encoding, never break framing.
    """
    _bootstrap()
    accepted: dict[type, int] = {}
    try:
        for entry in peer_vocabulary or ():
            fid, name, sig = entry
            cls = _FAST_BY_ID.get(fid)
            if cls is not None and cls.__name__ == name and _FAST_SIG[fid] == sig:
                accepted[cls] = fid
    except (TypeError, ValueError):
        return {}
    return accepted


# -- encoding -----------------------------------------------------------------


def _put_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _put_uvarint(out, len(raw))
    out += raw


_NO_FAST: dict[type, int] = {}


_SEQ_TAG = {tuple: _T_TUPLE, list: _T_LIST, set: _T_SET, frozenset: _T_FROZENSET}
_OBJ_NEW = object.__new__


def _encode(out: bytearray, value: Any, fast: dict) -> None:
    # The varint writes for small values (tags, lengths, ids — the vast
    # majority on a transactional wire) are inlined as single appends;
    # profile-guided, since this loop is the process transport's CPU floor.
    if value is None:
        out.append(_T_NONE)
        return
    if value is True:
        out.append(_T_TRUE)
        return
    if value is False:
        out.append(_T_FALSE)
        return
    kind = type(value)
    if kind is int:
        out.append(_T_INT)
        # zigzag so small negatives stay small
        zz = (value << 1) ^ (-1 if value < 0 else 0)
        if zz < 0x80:
            out.append(zz)
        else:
            _put_uvarint(out, zz)
        return
    if kind is float:
        out.append(_T_FLOAT)
        out += _FLOAT.pack(value)
        return
    if kind is str:
        raw = value.encode("utf-8")
        size = len(raw)
        out.append(_T_STR)
        if size < 0x80:
            out.append(size)
        else:
            _put_uvarint(out, size)
        out += raw
        return
    if kind is bytes:
        size = len(value)
        out.append(_T_BYTES)
        if size < 0x80:
            out.append(size)
        else:
            _put_uvarint(out, size)
        out += value
        return
    if kind is tuple or kind is list or kind is set or kind is frozenset:
        size = len(value)
        out.append(_SEQ_TAG[kind])
        if size < 0x80:
            out.append(size)
        else:
            _put_uvarint(out, size)
        for item in value:
            _encode(out, item, fast)
        return
    if kind is dict:
        size = len(value)
        out.append(_T_DICT)
        if size < 0x80:
            out.append(size)
        else:
            _put_uvarint(out, size)
        for key, item in value.items():
            _encode(out, key, fast)
            _encode(out, item, fast)
        return
    # Sentinels: compared by identity everywhere, so they need their own
    # tags to survive a process hop.
    if value is _TOMBSTONE:
        out.append(_T_TOMBSTONE)
        return
    if value is _KEY_MIN:
        out.append(_T_KEY_MIN)
        return
    if value is _KEY_MAX:
        out.append(_T_KEY_MAX)
        return
    fields = _FIELDS.get(kind)
    if fields is not None:
        fid = fast.get(kind)
        if fid is not None:
            head = _FAST_OBJ_HEAD.get(kind)
            if head is not None and head[1] == fid:
                out += head
            else:
                # A non-canonical id (only reachable from hand-built maps,
                # e.g. skew tests) still encodes correctly, just unmemoized.
                out.append(_T_FOBJ)
                _put_uvarint(out, fid)
                _put_uvarint(out, len(fields))
            # Simple field values (the bulk of a transactional message:
            # ids, LSNs, table names, flags) are encoded inline — one
            # recursive call saved per field.
            attrs = value.__dict__
            for name in fields:
                item = attrs[name]
                if item is None:
                    out.append(_T_NONE)
                    continue
                item_kind = type(item)
                if item_kind is int:
                    out.append(_T_INT)
                    zz = (item << 1) ^ (-1 if item < 0 else 0)
                    if zz < 0x80:
                        out.append(zz)
                    else:
                        _put_uvarint(out, zz)
                elif item_kind is str:
                    raw = item.encode("utf-8")
                    size = len(raw)
                    out.append(_T_STR)
                    if size < 0x80:
                        out.append(size)
                    else:
                        _put_uvarint(out, size)
                    out += raw
                elif item is True:
                    out.append(_T_TRUE)
                elif item is False:
                    out.append(_T_FALSE)
                else:
                    _encode(out, item, fast)
            return
        out += _OBJ_HEAD[kind]
        heads = _FIELD_HEAD[kind]
        for index, name in enumerate(fields):
            out += heads[index]
            _encode(out, getattr(value, name), fast)
        return
    if isinstance(value, enum.Enum):
        fid = fast.get(kind)
        if fid is not None:
            whole = _FAST_ENUM_BYTES.get(value)
            if whole is not None and whole[1] == fid:
                out += whole
                return
            out.append(_T_FENUM)
            _put_uvarint(out, fid)
            _encode(out, value.value, fast)
            return
        head = _ENUM_HEAD.get(kind)
        if head is None:
            raise WireEncodeError(f"unregistered enum: {kind.__name__}")
        out += head
        _encode(out, value.value, fast)
        return
    raise WireEncodeError(f"cannot encode {kind.__name__}: {value!r}")


def encode(value: Any) -> bytes:
    """Serialize one value (typically a ``Message``) to bytes."""
    _bootstrap()
    out = bytearray()
    _encode(out, value, _NO_FAST)
    return bytes(out)


def encode_into(out: bytearray, value: Any) -> bytes:
    """Tagged encode into a caller-owned buffer (cleared first) — the
    transports reuse one ``bytearray`` per connection to cut growth
    reallocations on the hot send path."""
    _bootstrap()
    del out[:]
    _encode(out, value, _NO_FAST)
    return bytes(out)


def encode_fast_frame(
    kind: int,
    seq: int,
    payload: Any,
    fast: dict,
    scratch: Optional[bytearray] = None,
) -> bytes:
    """One CRC'd fast frame: ``magic | crc32(body) | kind | seq | payload``.

    ``fast`` is the negotiated encode map from :func:`negotiate`; any value
    outside it (including nested ones) falls back to the tagged form
    in place.  ``scratch`` is an optional reusable buffer.
    """
    _bootstrap()
    out = scratch if scratch is not None else bytearray()
    del out[:]
    out += b"\x00" * _FAST_HEAD.size
    if kind < 0x80:
        out.append(kind)
    else:
        _put_uvarint(out, kind)
    if seq < 0x80:
        out.append(seq)
    else:
        _put_uvarint(out, seq)
    _encode(out, payload, fast)
    crc = zlib.crc32(memoryview(out)[_FAST_HEAD.size :]) & 0xFFFFFFFF
    _FAST_HEAD.pack_into(out, 0, FAST_MAGIC, crc)
    return bytes(out)


# -- decoding -----------------------------------------------------------------


def _uvarint_at(data: bytes, pos: int) -> tuple:
    """Multi-byte varint continuation (the one-byte case is inlined at
    every call site — on this wire almost every varint fits one byte)."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def _text_at(data: bytes, pos: int) -> tuple:
    size = data[pos]
    pos += 1
    if size >= 0x80:
        size, pos = _uvarint_at(data, pos - 1)
    stop = pos + size
    if stop > len(data):
        raise WireDecodeError("truncated frame")
    try:
        return data[pos:stop].decode("utf-8"), stop
    except UnicodeDecodeError as exc:
        raise WireDecodeError(f"bad utf-8 in frame: {exc}") from exc


def _decode_at(data: bytes, pos: int) -> tuple:
    """Decode one value at ``pos``; returns ``(value, next_pos)``.

    Positional and allocation-lean on purpose: running off the end of
    ``data`` raises ``IndexError``, which the entry points translate to
    ``WireDecodeError("truncated frame")`` — one try/except per frame
    instead of a bounds check per byte.
    """
    tag = data[pos]
    pos += 1
    if tag == _T_INT:
        zz = data[pos]
        pos += 1
        if zz >= 0x80:
            zz, pos = _uvarint_at(data, pos - 1)
        return (zz >> 1) ^ -(zz & 1), pos
    if tag == _T_STR:
        return _text_at(data, pos)
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FOBJ:
        fid = data[pos]
        pos += 1
        if fid >= 0x80:
            fid, pos = _uvarint_at(data, pos - 1)
        cls = _FAST_BY_ID.get(fid)
        fields = _FIELDS.get(cls) if cls is not None else None
        if fields is None:
            raise UnknownTypeError(f"unknown fast type id {fid} on wire")
        count = data[pos]
        pos += 1
        if count >= 0x80:
            count, pos = _uvarint_at(data, pos - 1)
        if count != len(fields):
            raise WireDecodeError(
                f"fast {cls.__name__} field count {count} != {len(fields)}"
            )
        # Construct without the (frozen) dataclass __init__: every field
        # is present positionally, so the per-field ``object.__setattr__``
        # dance buys nothing.  Simple values decode inline, mirroring the
        # encoder's fast-field specialization.
        obj = _OBJ_NEW(cls)
        attrs = obj.__dict__
        for name in fields:
            tag = data[pos]
            if tag == _T_INT:
                pos += 1
                zz = data[pos]
                pos += 1
                if zz >= 0x80:
                    zz, pos = _uvarint_at(data, pos - 1)
                attrs[name] = (zz >> 1) ^ -(zz & 1)
            elif tag == _T_STR:
                attrs[name], pos = _text_at(data, pos + 1)
            elif tag == _T_NONE:
                attrs[name] = None
                pos += 1
            elif tag == _T_TRUE:
                attrs[name] = True
                pos += 1
            elif tag == _T_FALSE:
                attrs[name] = False
                pos += 1
            else:
                attrs[name], pos = _decode_at(data, pos)
        return obj, pos
    if tag == _T_TUPLE or tag == _T_LIST or tag == _T_SET or tag == _T_FROZENSET:
        count = data[pos]
        pos += 1
        if count >= 0x80:
            count, pos = _uvarint_at(data, pos - 1)
        items = []
        append = items.append
        for _ in range(count):
            value, pos = _decode_at(data, pos)
            append(value)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_LIST:
            return items, pos
        if tag == _T_SET:
            return set(items), pos
        return frozenset(items), pos
    if tag == _T_DICT:
        count = data[pos]
        pos += 1
        if count >= 0x80:
            count, pos = _uvarint_at(data, pos - 1)
        result: dict = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            value, pos = _decode_at(data, pos)
            result[key] = value
        return result, pos
    if tag == _T_FLOAT:
        stop = pos + 8
        if stop > len(data):
            raise WireDecodeError("truncated frame")
        return _FLOAT.unpack_from(data, pos)[0], stop
    if tag == _T_BYTES:
        size = data[pos]
        pos += 1
        if size >= 0x80:
            size, pos = _uvarint_at(data, pos - 1)
        stop = pos + size
        if stop > len(data):
            raise WireDecodeError("truncated frame")
        return data[pos:stop], stop
    if tag == _T_TOMBSTONE:
        return _TOMBSTONE, pos
    if tag == _T_KEY_MIN:
        return _KEY_MIN, pos
    if tag == _T_KEY_MAX:
        return _KEY_MAX, pos
    if tag == _T_ENUM:
        name, pos = _text_at(data, pos)
        cls = _BY_NAME.get(name)
        if cls is None or not issubclass(cls, enum.Enum):
            raise UnknownTypeError(f"unknown enum on wire: {name!r}")
        value, pos = _decode_at(data, pos)
        try:
            return cls(value), pos
        except ValueError as exc:
            raise WireDecodeError(f"bad {name} value: {value!r}") from exc
    if tag == _T_OBJ:
        name, pos = _text_at(data, pos)
        cls = _BY_NAME.get(name)
        if cls is None:
            raise UnknownTypeError(f"unknown type on wire: {name!r}")
        known = _FIELD_SETS.get(cls)
        if known is None:
            raise UnknownTypeError(f"{name!r} is not a wire dataclass")
        count, pos = _uvarint_at(data, pos)
        kwargs: dict[str, Any] = {}
        for _ in range(count):
            field_name, pos = _text_at(data, pos)
            value, pos = _decode_at(data, pos)
            if field_name not in known:
                raise UnknownFieldError(f"{name} has no field {field_name!r}")
            kwargs[field_name] = value
        try:
            return cls(**kwargs), pos
        except TypeError as exc:
            raise WireDecodeError(f"cannot build {name}: {exc}") from exc
    if tag == _T_FENUM:
        fid = data[pos]
        pos += 1
        if fid >= 0x80:
            fid, pos = _uvarint_at(data, pos - 1)
        members = _FAST_ENUM_MAP.get(fid)
        if members is None:
            raise UnknownTypeError(f"unknown fast enum id {fid} on wire")
        value, pos = _decode_at(data, pos)
        try:
            return members[value], pos
        except (KeyError, TypeError):
            cls = _FAST_BY_ID[fid]
            raise WireDecodeError(
                f"bad {cls.__name__} value: {value!r}"
            ) from None
    raise WireDecodeError(f"unknown wire tag 0x{tag:02x}")


def decode(data: bytes, expect: Optional[type] = None) -> Any:
    """Deserialize one value; raises :class:`WireDecodeError` subclasses.

    ``expect`` optionally asserts the top-level type (transport framing
    uses it to reject cross-protocol garbage early).
    """
    _bootstrap()
    try:
        value, pos = _decode_at(data, 0)
    except IndexError:
        raise WireDecodeError("truncated frame") from None
    if pos != len(data):
        raise WireDecodeError(
            f"trailing garbage: {len(data) - pos} bytes after value"
        )
    if expect is not None and not isinstance(value, expect):
        raise WireDecodeError(
            f"expected {expect.__name__}, decoded {type(value).__name__}"
        )
    return value


def decode_fast_frame(data: bytes) -> tuple:
    """Decode one fast frame to ``(kind, seq, payload)``.

    The CRC is checked before any positional decode, so a truncated or
    bit-flipped frame deterministically raises :class:`WireDecodeError`
    (never a structurally-plausible wrong message).
    """
    _bootstrap()
    head = _FAST_HEAD.size
    if len(data) <= head or data[0] != FAST_MAGIC:
        raise WireDecodeError("not a fast frame")
    _magic, crc = _FAST_HEAD.unpack_from(data, 0)
    if zlib.crc32(memoryview(data)[head:]) & 0xFFFFFFFF != crc:
        raise WireDecodeError("fast frame failed its crc32 check")
    try:
        kind, pos = _uvarint_at(data, head)
        seq, pos = _uvarint_at(data, pos)
        payload, pos = _decode_at(data, pos)
    except IndexError:
        raise WireDecodeError("truncated frame") from None
    if pos != len(data):
        raise WireDecodeError(
            f"trailing garbage: {len(data) - pos} bytes after fast frame"
        )
    return kind, seq, payload
