"""A compact, self-describing wire codec for the TC/DC message set.

The process deployment mode (docs/architecture.md §10) moves each DC into
its own OS process, so every :class:`~repro.common.api.Message` must cross
a real pipe as bytes.  This codec is deliberately *self-describing*: each
value carries a one-byte type tag, registered dataclasses are encoded as
``(type name, {field name: value})`` and enums as ``(type name, value)``.
That buys two properties the §4.2.1 contracts need:

- **version skew is loud, not silent** — decoding a frame that names an
  unknown message type raises :class:`UnknownTypeError`, and a known type
  carrying an unknown field raises :class:`UnknownFieldError` (both are
  :class:`WireDecodeError`).  A field the sender omitted simply takes the
  dataclass default, so adding a defaulted field is backward compatible.
- **no pickle on the request path** — frames can only decode into the
  registered message/operation vocabulary, never arbitrary objects.

Scalars use varints (zigzag for sign), so the common small ints (LSNs,
op ids) cost one or two bytes.  The sentinels ``TOMBSTONE`` / ``KEY_MIN`` /
``KEY_MAX`` get their own tags and decode back to the canonical singletons
— identity checks like ``value is TOMBSTONE`` keep working across the wire.

Registered out of the box: every ``Message`` subclass (including the
control-plane messages of :mod:`repro.net.rpc`), every
``LogicalOperation``, ``OpResult``/``RecordView`` and the enums they
embed.  Extensions register their own payload dataclasses with
:func:`register`.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any, Optional

from repro.common.errors import ReproError

__all__ = [
    "WireError",
    "WireEncodeError",
    "WireDecodeError",
    "UnknownTypeError",
    "UnknownFieldError",
    "register",
    "registered_types",
    "encode",
    "decode",
]


class WireError(ReproError):
    """Base class for codec failures."""


class WireEncodeError(WireError):
    """The value contains a type the codec does not speak."""


class WireDecodeError(WireError):
    """The frame is truncated, malformed or has trailing garbage."""


class UnknownTypeError(WireDecodeError):
    """The frame names a dataclass/enum this process has not registered."""


class UnknownFieldError(WireDecodeError):
    """A registered type arrived with a field this process does not know."""


# -- type tags ----------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_OBJ = 0x0C
_T_ENUM = 0x0D
_T_TOMBSTONE = 0x0E
_T_KEY_MIN = 0x0F
_T_KEY_MAX = 0x10

_FLOAT = struct.Struct(">d")

# -- registry -----------------------------------------------------------------

_BY_NAME: dict[str, type] = {}
_FIELDS: dict[type, tuple[str, ...]] = {}
_FIELD_SETS: dict[type, frozenset] = {}
_bootstrapped = False


def register(cls: type) -> type:
    """Add a dataclass or enum to the wire vocabulary (idempotent).

    Names must be unique — the type name *is* the wire identifier.
    Usable as a decorator on extension payload types.
    """
    existing = _BY_NAME.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise WireError(
            f"wire name collision: {cls.__name__!r} already registered "
            f"for {existing!r}"
        )
    _BY_NAME[cls.__name__] = cls
    if dataclasses.is_dataclass(cls):
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELDS[cls] = names
        _FIELD_SETS[cls] = frozenset(names)
    elif not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
        raise WireError(f"only dataclasses and enums can be registered: {cls!r}")
    return cls


def registered_types() -> dict[str, type]:
    """The current wire vocabulary (name -> type); bootstraps lazily."""
    _bootstrap()
    return dict(_BY_NAME)


def _walk_subclasses(base: type) -> None:
    for sub in base.__subclasses__():
        register(sub)
        _walk_subclasses(sub)


def _bootstrap() -> None:
    global _bootstrapped
    if _bootstrapped:
        return
    _bootstrapped = True
    # The control-plane messages are Message subclasses; import them first
    # so one subclass walk collects the whole vocabulary.
    import repro.net.rpc  # noqa: F401  (registers via the Message walk)
    import repro.net.tcrpc  # noqa: F401  (TC-service vocabulary, same walk)
    from repro.common import api, ops, records

    register(api.Message)
    _walk_subclasses(api.Message)
    _walk_subclasses(ops.LogicalOperation)
    register(ops.OpResult)
    register(ops.OpStatus)
    register(ops.ReadFlavor)
    register(records.RecordView)


# -- encoding -----------------------------------------------------------------


def _put_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _put_uvarint(out, len(raw))
    out += raw


def _encode(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    if value is True:
        out.append(_T_TRUE)
        return
    if value is False:
        out.append(_T_FALSE)
        return
    kind = type(value)
    if kind is int:
        out.append(_T_INT)
        # zigzag so small negatives stay small
        zz = (value << 1) ^ (-1 if value < 0 else 0)
        _put_uvarint(out, zz)
        return
    if kind is float:
        out.append(_T_FLOAT)
        out += _FLOAT.pack(value)
        return
    if kind is str:
        out.append(_T_STR)
        _put_str(out, value)
        return
    if kind is bytes:
        out.append(_T_BYTES)
        _put_uvarint(out, len(value))
        out += value
        return
    if kind is tuple or kind is list or kind is set or kind is frozenset:
        out.append(
            {tuple: _T_TUPLE, list: _T_LIST, set: _T_SET, frozenset: _T_FROZENSET}[
                kind
            ]
        )
        _put_uvarint(out, len(value))
        for item in value:
            _encode(out, item)
        return
    if kind is dict:
        out.append(_T_DICT)
        _put_uvarint(out, len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
        return
    # Sentinels: compared by identity everywhere, so they need their own
    # tags to survive a process hop.
    from repro.common.records import KEY_MAX, KEY_MIN, TOMBSTONE

    if value is TOMBSTONE:
        out.append(_T_TOMBSTONE)
        return
    if value is KEY_MIN:
        out.append(_T_KEY_MIN)
        return
    if value is KEY_MAX:
        out.append(_T_KEY_MAX)
        return
    if isinstance(value, enum.Enum):
        if _BY_NAME.get(kind.__name__) is not kind:
            raise WireEncodeError(f"unregistered enum: {kind.__name__}")
        out.append(_T_ENUM)
        _put_str(out, kind.__name__)
        _encode(out, value.value)
        return
    fields = _FIELDS.get(kind)
    if fields is not None:
        out.append(_T_OBJ)
        _put_str(out, kind.__name__)
        _put_uvarint(out, len(fields))
        for name in fields:
            _put_str(out, name)
            _encode(out, getattr(value, name))
        return
    raise WireEncodeError(f"cannot encode {kind.__name__}: {value!r}")


def encode(value: Any) -> bytes:
    """Serialize one value (typically a ``Message``) to bytes."""
    _bootstrap()
    out = bytearray()
    _encode(out, value)
    return bytes(out)


# -- decoding -----------------------------------------------------------------


class _Reader:
    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self.end = len(data)

    def byte(self) -> int:
        if self.pos >= self.end:
            raise WireDecodeError("truncated frame")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        if self.pos + count > self.end:
            raise WireDecodeError("truncated frame")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def text(self) -> str:
        raw = self.take(self.uvarint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"bad utf-8 in frame: {exc}") from exc


def _decode(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        zz = reader.uvarint()
        return (zz >> 1) ^ -(zz & 1)
    if tag == _T_FLOAT:
        return _FLOAT.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return reader.text()
    if tag == _T_BYTES:
        return reader.take(reader.uvarint())
    if tag in (_T_TUPLE, _T_LIST, _T_SET, _T_FROZENSET):
        count = reader.uvarint()
        items = [_decode(reader) for _ in range(count)]
        if tag == _T_TUPLE:
            return tuple(items)
        if tag == _T_LIST:
            return items
        if tag == _T_SET:
            return set(items)
        return frozenset(items)
    if tag == _T_DICT:
        count = reader.uvarint()
        return {_decode(reader): _decode(reader) for _ in range(count)}
    if tag == _T_TOMBSTONE:
        from repro.common.records import TOMBSTONE

        return TOMBSTONE
    if tag == _T_KEY_MIN:
        from repro.common.records import KEY_MIN

        return KEY_MIN
    if tag == _T_KEY_MAX:
        from repro.common.records import KEY_MAX

        return KEY_MAX
    if tag == _T_ENUM:
        name = reader.text()
        cls = _BY_NAME.get(name)
        if cls is None or not issubclass(cls, enum.Enum):
            raise UnknownTypeError(f"unknown enum on wire: {name!r}")
        value = _decode(reader)
        try:
            return cls(value)
        except ValueError as exc:
            raise WireDecodeError(f"bad {name} value: {value!r}") from exc
    if tag == _T_OBJ:
        name = reader.text()
        cls = _BY_NAME.get(name)
        if cls is None:
            raise UnknownTypeError(f"unknown type on wire: {name!r}")
        known = _FIELD_SETS.get(cls)
        if known is None:
            raise UnknownTypeError(f"{name!r} is not a wire dataclass")
        count = reader.uvarint()
        kwargs: dict[str, Any] = {}
        for _ in range(count):
            field_name = reader.text()
            value = _decode(reader)
            if field_name not in known:
                raise UnknownFieldError(f"{name} has no field {field_name!r}")
            kwargs[field_name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise WireDecodeError(f"cannot build {name}: {exc}") from exc
    raise WireDecodeError(f"unknown wire tag 0x{tag:02x}")


def decode(data: bytes, expect: Optional[type] = None) -> Any:
    """Deserialize one value; raises :class:`WireDecodeError` subclasses.

    ``expect`` optionally asserts the top-level type (transport framing
    uses it to reject cross-protocol garbage early).
    """
    _bootstrap()
    reader = _Reader(data)
    value = _decode(reader)
    if reader.pos != reader.end:
        raise WireDecodeError(
            f"trailing garbage: {reader.end - reader.pos} bytes after value"
        )
    if expect is not None and not isinstance(value, expect):
        raise WireDecodeError(
            f"expected {expect.__name__}, decoded {type(value).__name__}"
        )
    return value
