"""File-backed stable storage for out-of-process DCs.

The in-memory :class:`~repro.storage.disk.StableStorage` gives crash
*semantics* (atomic pages, crash separation) but lives in the process it
models — fine for simulated crashes, useless when the supervisor delivers
a real ``SIGKILL``.  :class:`JournalStorage` keeps the same interface and
in-memory read path, but additionally appends every durable mutation to a
length-prefixed frame journal on disk.  A restarted server process replays
the journal to rebuild pages, metadata, the stable DC log and the page-id
allocation high-water, then runs ordinary DC recovery on top.

Durability model: each frame is written and ``flush()``-ed before the
mutating call returns, which moves the bytes into the OS page cache — and
the OS survives the *child's* SIGKILL, which is precisely the crash the
process deployment mode injects.  Whole-machine durability would add an
``fsync`` per force; the experiments here kill processes, not kernels, so
the journal trades that cost away (documented in docs/architecture.md §10).

Frames are pickled ``(tag, payload)`` tuples behind a ``<length, crc32>``
header.  Pickle is acceptable here — unlike the TC/DC request path, the
journal is written and read only by the same trusted server binary on its
own volume.  A torn tail (partial last frame) is discarded on replay: the
mutating call that wrote it never returned, so nothing downstream depends
on it — exactly torn-write = no write, the atomicity the in-memory store
promises.  The CRC is what makes torn-tail detection *sound* rather than
best-effort: a truncated pickle usually raises, but a cut that happens to
land on a self-delimiting prefix would otherwise replay as a different,
shorter frame.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Optional

from repro.common.lsn import Lsn, NULL_LSN
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import PageImage

#: Frame header: payload length, then CRC-32 of the payload bytes.
_HEADER = struct.Struct("<II")

_TAG_PAGE = 0
_TAG_FREE = 1
_TAG_META = 2
_TAG_LOG = 3
_TAG_TRUNC = 4
_TAG_ALLOC = 5


class JournalStorage(StableStorage):
    """Stable storage whose mutations also land in an on-disk journal."""

    def __init__(self, path: str, metrics: Optional[Metrics] = None) -> None:
        super().__init__(metrics)
        self._path = path
        self._file = None
        self.replayed = self._replay()
        self._file = open(path, "ab")

    # -- journaling ---------------------------------------------------------

    def _journal(self, tag: int, payload: object) -> None:
        # Callers hold self._lock, so frame order matches apply order.
        frame = pickle.dumps((tag, payload), protocol=pickle.HIGHEST_PROTOCOL)
        self._file.write(_HEADER.pack(len(frame), zlib.crc32(frame)))
        self._file.write(frame)
        self._file.flush()
        self.metrics.incr("journal.frames")

    def _replay(self) -> bool:
        try:
            with open(self._path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return False
        pos = 0
        applied = 0
        size = len(data)
        while pos + _HEADER.size <= size:
            length, crc = _HEADER.unpack_from(data, pos)
            if pos + _HEADER.size + length > size:
                break  # torn tail: the write never returned, drop it
            frame = data[pos + _HEADER.size : pos + _HEADER.size + length]
            if zlib.crc32(frame) != crc:
                # Torn inside the payload (or a corrupted header): without
                # the CRC a truncation landing on a valid pickle prefix
                # would replay as a different frame.
                self.metrics.incr("journal.crc_rejected")
                break
            try:
                tag, payload = pickle.loads(frame)
            except Exception:
                break
            self._apply(tag, payload)
            applied += 1
            pos += _HEADER.size + length
        if pos < size:
            # Truncate the torn tail so the append handle continues from a
            # clean frame boundary.
            with open(self._path, "ab") as handle:
                handle.truncate(pos)
        self.metrics.incr("journal.replayed_frames", applied)
        return applied > 0

    def _apply(self, tag: int, payload: object) -> None:
        if tag == _TAG_PAGE:
            image: PageImage = payload
            self._pages[image.page_id] = image
            if image.page_id >= self._next_page_id:
                self._next_page_id = image.page_id + 1
        elif tag == _TAG_FREE:
            self._pages.pop(payload, None)
        elif tag == _TAG_META:
            key, value = payload
            self._metadata[key] = value
        elif tag == _TAG_LOG:
            self._dc_log.extend(payload)
        elif tag == _TAG_TRUNC:
            self._dc_log = [
                entry
                for entry in self._dc_log
                if getattr(entry, "dlsn", NULL_LSN) >= payload
            ]
        elif tag == _TAG_ALLOC:
            if payload >= self._next_page_id:
                self._next_page_id = payload + 1

    # -- overridden mutators ------------------------------------------------

    def allocate_page_id(self) -> int:
        with self._lock:
            page_id = self._next_page_id
            self._next_page_id += 1
            self._journal(_TAG_ALLOC, page_id)
            return page_id

    def note_allocated(self, page_id: int) -> None:
        with self._lock:
            if page_id >= self._next_page_id:
                self._next_page_id = page_id + 1
                self._journal(_TAG_ALLOC, page_id)

    def _write_page(self, image: PageImage) -> None:
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DISK_PAGE_WRITE, self.owner)
        with self._lock:
            self._pages[image.page_id] = image
            self._journal(_TAG_PAGE, image)
            self.metrics.incr("disk.page_writes")
            self.metrics.observe("disk.page_bytes", image.encoded_size())

    def free_page(self, page_id: int) -> None:
        with self._lock:
            self._pages.pop(page_id, None)
            self._journal(_TAG_FREE, page_id)
            self.metrics.incr("disk.page_frees")

    def write_metadata(self, key: str, value: object) -> None:
        with self._lock:
            self._metadata[key] = value
            self._journal(_TAG_META, (key, value))

    def _append_dc_log(self, entries: list[object]) -> None:
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DISK_LOG_FORCE, self.owner)
        with self._lock:
            self._dc_log.extend(entries)
            self._journal(_TAG_LOG, list(entries))
            self.metrics.incr("disk.dclog_forces")

    def truncate_dc_log(self, keep_from_dlsn: Lsn) -> None:
        with self._lock:
            self._dc_log = [
                entry
                for entry in self._dc_log
                if getattr(entry, "dlsn", NULL_LSN) >= keep_from_dlsn
            ]
            self._journal(_TAG_TRUNC, keep_from_dlsn)

    # -- compaction ---------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal as a snapshot of live state; returns bytes
        reclaimed.

        The append-only journal keeps every superseded page image and
        truncated log entry forever, so replay cost after a kill -9 grows
        with *history*; compaction rewrites it to grow with *state*.  The
        swap is atomic (write a sibling file, then ``os.replace``): a
        crash at any point leaves either the complete old journal or the
        complete new one — never a mix, never a torn volume.
        """
        with self._lock:
            before = self.journal_bytes()
            tmp_path = self._path + ".compact"
            with open(tmp_path, "wb") as tmp:

                def frame(tag: int, payload: object) -> None:
                    data = pickle.dumps(
                        (tag, payload), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    tmp.write(_HEADER.pack(len(data), zlib.crc32(data)))
                    tmp.write(data)

                if self._next_page_id > 0:
                    frame(_TAG_ALLOC, self._next_page_id - 1)
                for key, value in self._metadata.items():
                    frame(_TAG_META, (key, value))
                for image in self._pages.values():
                    frame(_TAG_PAGE, image)
                if self._dc_log:
                    frame(_TAG_LOG, list(self._dc_log))
                tmp.flush()
            if self._file is not None:
                try:
                    self._file.flush()
                    self._file.close()
                except OSError:
                    pass
            os.replace(tmp_path, self._path)
            self._file = open(self._path, "ab")
            reclaimed = max(0, before - self.journal_bytes())
            self.metrics.incr("journal.compactions")
            self.metrics.incr("journal.compacted_bytes", reclaimed)
            return reclaimed

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.flush()
                self._file.close()
            except OSError:
                pass
            self._file = None

    @property
    def path(self) -> str:
        return self._path

    def journal_bytes(self) -> int:
        try:
            return os.path.getsize(self._path)
        except OSError:
            return 0
