"""The TC server: one transactional component living in its own OS process.

This is the paper's unbundling completed end-to-end (docs/architecture.md
§16): DCs became processes in the process deployment mode; here the TC —
the last component still living in the client's address space — becomes
one too.  :func:`serve` is the child entry point behind
:class:`~repro.net.tcclient.TcProcess`; :func:`serve_socket` backs the
standalone ``python -m repro serve-tc`` CLI.

The server builds an ordinary
:class:`~repro.tc.transactional_component.TransactionalComponent` whose
log is a :class:`DurableTcLog` — the same logical TcLog, but every force
persists the newly-stable suffix to a CRC'd journal *before* the stable
boundary advances.  That ordering is the whole §5.3.2 story for a TC
process: EOSL is what commit acknowledgement waits on (group-commit
riders poll it), so nothing is ever acknowledged that a ``kill -9`` could
lose.  A respawned server replays the journal, then runs the TC restart
protocol (record reset at LSNst, redo of the stable stream, undo of
losers) against its DCs *before* saying hello — mid-commit kills converge
via journal replay + per-op abLSN idempotence, exactly like the
in-process crash/restart path.

The server talks to its DC pool through :class:`~repro.net.process.
DcClient` connections over the DCs' Unix sockets — real processes on both
sides of every §4.2.1 interaction, with the force-log causality gate
bridged per connection by the DC server.

Ownership (Section 6) arrives as stable-hash partition grants: the TC
owns key ``k`` of a granted table iff ``stable_key_hash(k) % modulus`` is
one of its residues.  A write for a partition it does not own is bounced
with a :class:`~repro.net.tcrpc.Redirect` naming the owner — the router's
retryable misroute contract — before the mutation path is ever entered.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from collections import deque
from typing import Optional

from repro.common.api import ControlAck, Message
from repro.common.config import ChannelConfig, TcConfig
from repro.common.errors import (
    ComponentUnavailableError,
    CrashedError,
    ReproError,
)
from repro.common.lsn import Lsn, NULL_LSN
from repro.common.ops import ReadFlavor
from repro.cloud.partitioning import stable_key_hash
from repro.net import rpc, wire
from repro.net.eventloop import EventLoop, Peer
from repro.net.rpc import (
    AttachShm,
    NegotiateCodec,
    RemoteError,
    Shutdown,
    StatsReply,
    StatsRequest,
)
from repro.net.shm import ShmLink
from repro.net.tcrpc import (
    AttachDc,
    DcRestarted,
    GrantOwnership,
    ReadOther,
    Redirect,
    RefreshRoutes,
    ScanOther,
    SharingMode,
    TcCheckpoint,
    TcCheckpointReply,
    TcHello,
    TcRetryPending,
    TxnAbort,
    TxnAck,
    TxnBegin,
    TxnBeginReply,
    TxnCommit,
    TxnRead,
    TxnReadReply,
    TxnScan,
    TxnScanReply,
    TxnSync,
    TxnWrite,
)
from repro.sim.metrics import Metrics
from repro.tc.log import TcLog, TcLogRecord
from repro.tc.transactional_component import (
    TransactionalComponent,
    TransactionState,
)

_HEADER = struct.Struct("<II")  # frame length, crc32 — JournalStorage's idiom


class _RecordJournal:
    """Append-only CRC'd frame journal for TC log records.

    Same durability contract as the DC's :class:`~repro.net.journal.
    JournalStorage`: write + flush per frame (the OS page cache survives a
    child SIGKILL; only whole-machine failure is out of scope), CRC per
    frame, and a torn tail is silently discarded on replay — the paper's
    torn-write-is-no-write assumption.  Frames are ``("records", [...])``
    batches (one per log force) and ``("meta", truncated_upto)`` markers;
    checkpoint-driven truncation rewrites the whole file as live state
    behind an atomic replace.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.truncated_upto: Lsn = NULL_LSN
        self.records: list[TcLogRecord] = []
        self._replay()
        self.replayed = bool(self.records) or self.truncated_upto != NULL_LSN
        self._file = open(path, "ab")

    def _replay(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        pos = 0
        good = 0
        while pos + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, pos)
            frame = data[pos + _HEADER.size : pos + _HEADER.size + length]
            if len(frame) < length or zlib.crc32(frame) != crc:
                break  # torn tail: the write never happened
            tag, payload = pickle.loads(frame)
            if tag == "meta":
                self.truncated_upto = payload
            elif tag == "records":
                self.records.extend(payload)
            pos += _HEADER.size + length
            good = pos
        if good != len(data):
            with open(self.path, "ab") as handle:
                handle.truncate(good)

    def _frame(self, tag: str, payload: object) -> bytes:
        frame = pickle.dumps((tag, payload), protocol=pickle.HIGHEST_PROTOCOL)
        return _HEADER.pack(len(frame), zlib.crc32(frame)) + frame

    def append_records(self, records: list[TcLogRecord]) -> None:
        self._file.write(self._frame("records", list(records)))
        self._file.flush()

    def rewrite(self, truncated_upto: Lsn, records: list[TcLogRecord]) -> None:
        """Replace history with live state (tmp file + atomic rename)."""
        tmp = self.path + ".compact"
        with open(tmp, "wb") as handle:
            handle.write(self._frame("meta", truncated_upto))
            if records:
                handle.write(self._frame("records", list(records)))
            handle.flush()
        os.replace(tmp, self.path)
        self._file.close()
        self._file = open(self.path, "ab")

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass


class DurableTcLog(TcLog):
    """A TcLog whose stable prefix really is stable.

    The in-memory TcLog *models* stability with a counter; here the
    boundary only advances after the newly-stable suffix is journaled.
    Both happen under the log mutex, so a group-commit rider polling
    ``eosl`` can never observe a commit record as stable before its frame
    is on the journal — acknowledge-after-force survives ``kill -9``
    between any two instructions.

    Checkpoint truncation (:meth:`truncate_below`) rewrites the journal as
    live state and persists ``truncated_upto`` in a meta frame.  That meta
    frame is load-bearing: replaying an empty record list *without* it
    would make restart send ``RestartBegin(stable_lsn=0)`` and record-level
    reset would erase checkpointed DC state that is in fact durable.
    """

    def __init__(self, journal: _RecordJournal, metrics: Optional[Metrics] = None):
        super().__init__(metrics)
        self._journal = journal
        self.replayed = journal.replayed
        if journal.replayed:
            self._records = list(journal.records)
            self._stable_count = len(self._records)
            self._truncated_upto = journal.truncated_upto
            self.recover_lsn_generator()

    def _force(self) -> Lsn:
        with self._mutex:
            if self._stable_count < len(self._records):
                self._journal.append_records(self._records[self._stable_count :])
                self._stable_count = len(self._records)
                self.metrics.incr("tclog.forces")
                self.metrics.incr("tclog.journal_forces")
            return self._eosl_locked()

    def truncate_below(self, point: Lsn) -> int:
        dropped = super().truncate_below(point)
        if dropped:
            with self._mutex:
                self._journal.rewrite(
                    self._truncated_upto, self._records[: self._stable_count]
                )
        return dropped


def _logical(table: str) -> str:
    return table.split("@", 1)[0]


class _TcServer:
    """Event-loop server for one TC process, serving any number of clients.

    One :class:`~repro.net.eventloop.EventLoop` owns the spawning parent's
    pipe (if any), every connection a socket listener accepts, and any
    shared-memory rings clients attach — so the TC tier scales clients
    without growing threads (server thread count stays O(#DCs): the
    DcClient transports keep their receiver/control threads so force-log
    bridges and pipelined batches proceed while a dispatch is running).
    Dispatch itself stays single-threaded: requests are served strictly in
    arrival order, which is what keeps the server's view of transaction
    order simple.

    Each client owns the transactions it begins; a client that disconnects
    mid-transaction gets its ACTIVE transactions aborted (presumed abort —
    the same outcome its crash would force at restart, taken eagerly so
    its locks don't outlive it).
    """

    def __init__(
        self,
        conn,
        name: str,
        tc_id: int,
        tc_config: Optional[TcConfig],
        journal_path: str,
        dc_socks: dict[str, str],
        grants: Optional[list] = None,
        sharing_mode: str = "",
        request_timeout_s: float = 30.0,
        fast_codec: bool = True,
        shm_ring_bytes: int = 0,
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ) -> None:
        from repro.net.process import DcClient

        self._name = name
        #: Advertise/accept fast-codec negotiation for the client leg and
        #: our own DcClient legs (False = tagged-only peer simulation).
        self._fast_ok = fast_codec
        #: Per-connection negotiated encode maps ({} until that client
        #: sends NegotiateCodec — replies before that stay tagged).
        self._fast: dict[Peer, dict] = {}
        #: Ring sizing/tuning for our own DcClient legs (0 = pipe only).
        self._shm_ring_bytes = shm_ring_bytes
        self._shm_spin = shm_spin
        self._shm_park_ms = shm_park_ms
        self._scratch = bytearray()
        self._metrics = Metrics()
        self._journal = _RecordJournal(journal_path)
        log = DurableTcLog(self._journal, self._metrics)
        config = tc_config or TcConfig.optimized()
        self._tc = TransactionalComponent(
            tc_id=tc_id, config=config, metrics=self._metrics, log=log
        )
        self._request_timeout_s = request_timeout_s
        self._channel_config = ChannelConfig(
            transport="process", request_timeout_s=request_timeout_s
        )
        self._clients: dict[str, DcClient] = {}
        for dc_name, socket_path in dict(dc_socks or {}).items():
            self._attach(dc_name, socket_path)
        #: logical table -> (modulus, residues, owners) — Section 6 grants.
        self._ownership: dict[str, tuple[int, frozenset, tuple]] = {}
        for grant in grants or []:
            self._install_grant(*grant)
        mode = sharing_mode or config.sharing_mode
        self._default_flavor = (
            ReadFlavor.DIRTY if mode == "dirty" else ReadFlavor.READ_COMMITTED
        )
        self._txns: dict[int, object] = {}
        self._recovered = False
        if log.replayed:
            # §5.3.2 TC failure, against a real journal: mark the TC
            # crashed (the log tail is already exactly the stable prefix)
            # and run restart — record reset at LSNst, redo of the stable
            # stream, undo of loser transactions — before the hello, so a
            # client never sees a half-recovered server.
            self._tc.crash()
            self._tc.restart()
            self._recovered = True
        self._loop = EventLoop(self._metrics)
        #: txn_id -> owning client connection (abort-on-disconnect).
        self._txn_peers: dict[int, Peer] = {}
        #: Frames decoded but not yet dispatched (see dcserver.py: frames
        #: that land while a dispatch is on the stack are served after it,
        #: strictly in arrival order).
        self._backlog: deque = deque()
        self._dispatching = False
        #: Socket-mode session accounting (serve_socket's max_sessions).
        self._sessions_ended = 0
        self._max_sessions = 0
        self._parent_peer: Optional[Peer] = None
        if conn is not None:
            self._parent_peer = self._loop.adopt(
                conn, self._on_frame, self._on_parent_close
            )

    # -- wiring -------------------------------------------------------------

    def _attach(self, dc_name: str, socket_path: str) -> None:
        from repro.net.process import DcClient

        client = DcClient(
            dc_name,
            socket_path,
            metrics=self._metrics,
            request_timeout_s=self._request_timeout_s,
            fast_codec=self._fast_ok,
            # The link tag is this TC's durable identity plus the DC's
            # name, so a respawned TC re-creates (and a stale SIGKILLed
            # incarnation's segments get replaced under) the same names.
            shm_ring_bytes=self._shm_ring_bytes,
            shm_tag=f"{self._journal.path}:{dc_name}",
            shm_spin=self._shm_spin,
            shm_park_ms=self._shm_park_ms,
        )
        self._clients[dc_name] = client
        self._tc.attach_dc(client, self._channel_config)

    def _install_grant(
        self, table: str, modulus: int, residues: tuple, owners: tuple
    ) -> None:
        self._ownership[table] = (max(int(modulus), 1), frozenset(residues), tuple(owners))
        self._tc.ownership_guard = self._guard

    def _guard(self, table: str, key: object) -> bool:
        rule = self._ownership.get(_logical(table))
        if rule is None:
            return False
        modulus, residues, _owners = rule
        return stable_key_hash(key) % modulus in residues

    def _misroute_owner(self, table: str, key: object) -> Optional[str]:
        """The owning TC's name, when this server does *not* own the key."""
        if not self._ownership:
            return None
        rule = self._ownership.get(_logical(table))
        if rule is None:
            return None
        modulus, residues, owners = rule
        partition = stable_key_hash(key) % modulus
        if partition in residues:
            return None
        return owners[partition] if partition < len(owners) else ""

    # -- dispatch -----------------------------------------------------------

    def _txn(self, txn_id: int):
        txn = self._txns.get(txn_id)
        if txn is None:
            raise ReproError(f"TC {self._name}: unknown transaction {txn_id}")
        return txn

    def _reap(self, txn_id: int) -> None:
        txn = self._txns.get(txn_id)
        if txn is not None and txn.state is not TransactionState.ACTIVE:
            del self._txns[txn_id]
            self._txn_peers.pop(txn_id, None)

    def _flavor(self, flavor: object) -> ReadFlavor:
        return flavor if isinstance(flavor, ReadFlavor) else self._default_flavor

    def _dispatch(self, peer: Peer, message: Message) -> Optional[Message]:
        tc = self._tc
        if isinstance(message, NegotiateCodec):
            if self._fast_ok:
                self._fast[peer] = wire.negotiate(message.vocab)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, AttachShm):
            link = ShmLink.attach(message.c2s_name, message.s2c_name)
            self._loop.attach_shm(
                peer, link, message.spin, message.park_ms / 1000.0
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, TxnWrite):
            owner = self._misroute_owner(message.table, message.key)
            if owner is not None:
                self._metrics.incr("tcserver.redirects")
                return Redirect(
                    tc_id=message.tc_id,
                    table=message.table,
                    key=message.key,
                    owner=owner,
                )
            txn = self._txn(message.txn_id)
            try:
                if message.verb == "insert":
                    txn.insert(
                        message.table,
                        message.key,
                        message.value,
                        deferred=message.deferred,
                    )
                elif message.verb == "update":
                    txn.update(
                        message.table,
                        message.key,
                        message.value,
                        deferred=message.deferred,
                    )
                elif message.verb == "delete":
                    txn.delete(message.table, message.key, deferred=message.deferred)
                elif message.verb == "increment":
                    txn.increment(
                        message.table,
                        message.key,
                        message.delta,
                        deferred=message.deferred,
                    )
                else:
                    raise ReproError(f"unknown write verb {message.verb!r}")
            finally:
                self._reap(message.txn_id)
            return TxnAck(tc_id=message.tc_id, txn_id=message.txn_id)
        if isinstance(message, TxnRead):
            txn = self._txn(message.txn_id)
            try:
                value = txn.read(message.table, message.key)
            finally:
                self._reap(message.txn_id)
            return TxnReadReply(
                tc_id=message.tc_id,
                txn_id=message.txn_id,
                found=value is not None,
                value=value,
            )
        if isinstance(message, TxnScan):
            txn = self._txn(message.txn_id)
            try:
                rows = txn.scan(
                    message.table, message.low, message.high, message.limit or None
                )
            finally:
                self._reap(message.txn_id)
            return TxnScanReply(
                tc_id=message.tc_id,
                txn_id=message.txn_id,
                rows=tuple(tuple(row) for row in rows),
            )
        if isinstance(message, TxnSync):
            txn = self._txn(message.txn_id)
            try:
                txn.sync()
            finally:
                self._reap(message.txn_id)
            return TxnAck(tc_id=message.tc_id, txn_id=message.txn_id)
        if isinstance(message, TxnBegin):
            txn = tc.begin()
            self._txns[txn.txn_id] = txn
            self._txn_peers[txn.txn_id] = peer
            return TxnBeginReply(tc_id=message.tc_id, txn_id=txn.txn_id)
        if isinstance(message, TxnCommit):
            txn = self._txn(message.txn_id)
            try:
                txn.commit()
            finally:
                self._reap(message.txn_id)
            return TxnAck(tc_id=message.tc_id, txn_id=message.txn_id)
        if isinstance(message, TxnAbort):
            # Presumed abort: a retried abort after a lost reply (or a
            # server restart that already undid the loser) finds no
            # transaction — that *is* the aborted outcome, acknowledge it.
            txn = self._txns.get(message.txn_id)
            if txn is not None:
                try:
                    txn.abort()
                finally:
                    self._reap(message.txn_id)
            return TxnAck(tc_id=message.tc_id, txn_id=message.txn_id)
        if isinstance(message, ReadOther):
            value = tc.read_other(
                message.table, message.key, self._flavor(message.flavor)
            )
            return TxnReadReply(
                tc_id=message.tc_id, found=value is not None, value=value
            )
        if isinstance(message, ScanOther):
            rows = tc.scan_other(
                message.table,
                message.low,
                message.high,
                message.limit or None,
                self._flavor(message.flavor),
            )
            return TxnScanReply(
                tc_id=message.tc_id, rows=tuple(tuple(row) for row in rows)
            )
        if isinstance(message, TcCheckpoint):
            advanced = tc.checkpoint()
            return TcCheckpointReply(
                tc_id=message.tc_id,
                advanced=advanced,
                rssp=tc.stats()["rssp"],
            )
        if isinstance(message, StatsRequest):
            return StatsReply(
                tc_id=message.tc_id,
                payload={
                    **tc.stats(),
                    "name": self._name,
                    "pid": os.getpid(),
                    "recovered": self._recovered,
                    "pending_zombies": tc.pending_zombies(),
                    "open_transactions": len(self._txns),
                    "journal_bytes": self._journal.size(),
                    "counters": self._metrics.counters(),
                    "connections": len(self._loop._peers),
                    # O(#DCs), not O(#clients): the loop serves every
                    # client; only DcClient legs own threads.
                    "threads": threading.active_count(),
                },
            )
        if isinstance(message, DcRestarted):
            client = self._clients.get(message.dc_name)
            if client is None:
                raise ReproError(f"TC {self._name}: unknown DC {message.dc_name!r}")
            # Reconnect over the (re-bound) socket, re-register, then let
            # prompt_redo drive tc._on_dc_restart: force + EOSL, redo
            # stream resend, RedoComplete, zombie retries — §5.2.1 across
            # two real process boundaries.  A redo the DC already saw is
            # absorbed by abLSN idempotence.
            client.recover(notify_tcs=True)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, RefreshRoutes):
            client = self._clients.get(message.dc_name)
            if client is None:
                raise ReproError(f"TC {self._name}: unknown DC {message.dc_name!r}")
            client.refresh_catalog()
            tc.refresh_routes(client)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, AttachDc):
            if message.dc_name not in self._clients:
                self._attach(message.dc_name, message.socket_path)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, GrantOwnership):
            self._install_grant(
                message.table, message.modulus, message.residues, message.owners
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, SharingMode):
            self._default_flavor = (
                ReadFlavor.DIRTY
                if message.mode == "dirty"
                else ReadFlavor.READ_COMMITTED
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, TcRetryPending):
            tc.retry_pending()
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, Shutdown):
            return ControlAck(tc_id=message.tc_id)
        raise ReproError(f"TC {self._name}: unhandled message {type(message).__name__}")

    # -- connection lifecycle ------------------------------------------------

    def _on_accept(self, sock) -> None:
        peer = self._loop.adopt(sock, self._on_frame, self._on_peer_close)
        try:
            self._send(peer, rpc.PUSH, 0, self.hello())
        except (BrokenPipeError, OSError):
            self._loop.close_peer(peer)

    def _abort_for(self, peer: Peer) -> None:
        """Presumed abort for a disconnected client's open transactions."""
        for txn_id, owner in list(self._txn_peers.items()):
            if owner is not peer:
                continue
            self._txn_peers.pop(txn_id, None)
            txn = self._txns.pop(txn_id, None)
            if txn is not None and txn.state is TransactionState.ACTIVE:
                try:
                    txn.abort()
                except ReproError:
                    pass  # restart/zombie machinery owns what abort cannot
                self._metrics.incr("tcserver.disconnect_aborts")

    def _on_peer_close(self, peer: Peer) -> None:
        self._fast.pop(peer, None)
        self._abort_for(peer)
        if peer is not self._parent_peer:
            self._sessions_ended += 1
            if self._max_sessions and self._sessions_ended >= self._max_sessions:
                self._loop.stop()

    def _on_parent_close(self, peer: Peer) -> None:
        self._fast.pop(peer, None)
        self._abort_for(peer)
        self._loop.stop()  # spawning client is gone; nothing to serve

    # -- main loop ----------------------------------------------------------

    def _send(self, peer: Peer, kind: int, seq: int, payload: object) -> None:
        peer.send_frame(
            rpc.pack_frame(kind, seq, payload, self._fast.get(peer), self._scratch)
        )

    def hello(self) -> TcHello:
        return TcHello(
            tc_id=self._tc.tc_id,
            tc_name=self._name,
            pid=os.getpid(),
            recovered=self._recovered,
            replayed_records=len(self._journal.records),
            fast_codec=wire.fast_vocabulary() if self._fast_ok else (),
        )

    def _on_frame(self, peer: Peer, data: bytes) -> None:
        try:
            kind, seq, message = rpc.unpack_frame(data)
        except wire.WireError:
            self._metrics.incr("tcserver.bad_frames")
            self._loop.close_peer(peer)
            return
        if kind in (rpc.DOORBELL, rpc.CLIENT_REPLY):
            return  # doorbells carry nothing; no SERVER_REQUESTs originate here
        self._backlog.append((peer, kind, seq, message))
        self._drain_backlog()

    def _drain_backlog(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._backlog:
                peer, kind, seq, message = self._backlog.popleft()
                if peer.closed:
                    continue
                if not self._serve_frame(peer, kind, seq, message):
                    self._loop.stop()
                    return
        finally:
            self._dispatching = False

    def _serve_frame(self, peer: Peer, kind: int, seq: int, message) -> bool:
        if kind != rpc.REQUEST:
            return True
        try:
            reply = self._dispatch(peer, message)
        except ComponentUnavailableError as exc:
            # A *downstream* DC is dead, not this TC: the client's
            # transaction is still open and abortable here, so the
            # failure must travel as an error, never as silence —
            # a lost-reply ABORTED client handle would strand the
            # open transaction (and its applied writes) forever.
            reply = RemoteError(
                tc_id=getattr(message, "tc_id", 0),
                kind=type(exc).__name__,
                text=str(exc),
            )
        except CrashedError:
            # Mirror the in-process convention: a crashed component
            # answers with silence and the caller's retry policy
            # decides (should not normally occur server-side).
            reply = None
        except ReproError as exc:
            reply = RemoteError(
                tc_id=getattr(message, "tc_id", 0),
                kind=type(exc).__name__,
                text=str(exc),
            )
        try:
            self._send(peer, rpc.REPLY, seq, reply)
        except (BrokenPipeError, OSError):
            self._loop.close_peer(peer)
            return peer is not self._parent_peer
        if isinstance(message, Shutdown):
            if peer is self._parent_peer:
                return False
            # A socket client said goodbye: end its session (counted
            # against max_sessions), keep serving everyone else.
            self._loop.close_peer(peer)
        return True

    def run(self, close_journal: bool = True) -> None:
        try:
            if self._parent_peer is not None:
                self._send(self._parent_peer, rpc.PUSH, 0, self.hello())
            self._loop.run()
        finally:
            for client in self._clients.values():
                client.close()
            if close_journal:
                self._journal.close()
            self._loop.close()


def serve(
    conn,
    name: str,
    tc_id: int,
    tc_config: Optional[TcConfig],
    journal_path: str,
    dc_socks: dict[str, str],
    grants: Optional[list] = None,
    sharing_mode: str = "",
    request_timeout_s: float = 30.0,
    fast_codec: bool = True,
    shm_ring_bytes: int = 0,
    shm_spin: int = 0,
    shm_park_ms: float = 0.0,
) -> None:
    """Child-process entry point (target of ``multiprocessing.Process``)."""
    _TcServer(
        conn,
        name,
        tc_id,
        tc_config,
        journal_path,
        dc_socks,
        grants,
        sharing_mode,
        request_timeout_s,
        fast_codec,
        shm_ring_bytes,
        shm_spin,
        shm_park_ms,
    ).run()


def serve_socket(
    listen_path: str,
    name: str,
    tc_id: int,
    tc_config: Optional[TcConfig],
    journal_path: str,
    dc_socks: dict[str, str],
    grants: Optional[list] = None,
    sharing_mode: str = "",
    request_timeout_s: float = 30.0,
    max_sessions: int = 0,
    fast_codec: bool = True,
    shm_ring_bytes: int = 0,
    shm_spin: int = 0,
    shm_park_ms: float = 0.0,
) -> None:
    """Standalone service mode (``python -m repro serve-tc``).

    Binds a Unix socket (or, with a ``tcp://host:port`` address, a TCP
    listener with TCP_NODELAY) and serves every accepted connection
    *concurrently* through one event loop — each connection gets the full
    protocol against the *same* durable journal, so a client reconnecting
    after a network blip (or a second client alongside the first) sees
    the same TC.  ``max_sessions`` stops the server once that many client
    sessions have ended (tests use it as a bound); 0 serves forever.
    """
    from repro.net.dcserver import bind_listener

    listener, _resolved = bind_listener(listen_path)
    server = _TcServer(
        None,
        name,
        tc_id,
        tc_config,
        journal_path,
        dc_socks,
        grants,
        sharing_mode,
        request_timeout_s,
        fast_codec,
        shm_ring_bytes,
        shm_spin,
        shm_park_ms,
    )
    server._max_sessions = max_sessions
    server._loop.add_listener(listener, server._on_accept)
    try:
        server.run()
    finally:
        if not listen_path.startswith("tcp://"):
            try:
                os.unlink(listen_path)
            except OSError:
                pass
