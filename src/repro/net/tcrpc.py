"""The TC-service control plane: app-facing txn API as wire messages.

The process deployment mode promoted DCs to OS processes (PR 4); this
vocabulary promotes the *TC* — the last component still trapped in the
client's address space — to its own process tier (docs/architecture.md
§16).  A client (the kernel's :class:`~repro.net.tcclient.RemoteTc`
proxy, or the router in :mod:`repro.cloud.router`) speaks these messages
to a :mod:`repro.net.tcserver` process over the same framed multiplexing
(:mod:`repro.net.rpc`) and tagged codec (:mod:`repro.net.wire`) the
DC tier uses.

Three message families:

- **Lifecycle / wiring** — :class:`TcHello` (first frame out of a fresh
  server, carrying whether its journal replayed), :class:`AttachDc` /
  :class:`RefreshRoutes` (DC pool membership and table routes),
  :class:`GrantOwnership` (Section 6's disjoint update rights, carried as
  a stable-hash partition rule so every process computes the same owner),
  :class:`SharingMode` (cross-TC read flavor), :class:`DcRestarted` (the
  supervisor's prompt that a shared DC was healed — the TC server
  reconnects and resends its redo stream), :class:`TcRetryPending`.
- **Transactions** — ``TxnBegin .. TxnCommit/TxnAbort`` mirror the
  :class:`~repro.tc.transactional_component.Transaction` surface 1:1;
  ``txn_id`` correlates every op with its server-side transaction.
  Writes collapse to one :class:`TxnWrite` with a ``verb`` so the
  vocabulary stays small while covering insert/update/delete/increment.
- **Sharing** — :class:`ReadOther` / :class:`ScanOther` are Section 6.2's
  cross-TC reads: no locks, never block, routable to *any* TC sharing the
  DC pool.

:class:`Redirect` is the router contract: a TC that does not own a key's
partition bounces the write with the owner's name instead of failing —
retryable misrouting, not an error (see ``TcRedirect``).

Every message is a frozen dataclass with fully-defaulted fields, like the
rest of the vocabulary, so schema evolution keeps decoding old frames.
All subclass :class:`repro.common.api.Message`; the wire bootstrap's
subclass walk registers them automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.api import Message
from repro.common.lsn import Lsn


# -- lifecycle / wiring -------------------------------------------------------


@dataclass(frozen=True)
class TcHello(Message):
    """First frame a TC server pushes: identity, and whether it recovered.

    ``recovered`` means the TC-log journal replayed on startup and the
    server ran the Section 5.3.2 restart protocol (record reset + redo +
    loser undo) against its DCs *before* accepting requests.
    """

    tc_name: str = ""
    pid: int = 0
    recovered: bool = False
    replayed_records: int = 0
    #: The server's fast-path codec vocabulary (``(id, name, signature)``
    #: triples); empty means tagged only.  Same negotiation contract as
    #: :class:`repro.net.rpc.Hello`.
    fast_codec: tuple = ()


@dataclass(frozen=True)
class AttachDc(Message):
    """Connect the TC server to one DC process via its Unix socket."""

    dc_name: str = ""
    socket_path: str = ""


@dataclass(frozen=True)
class RefreshRoutes(Message):
    """(Re)learn the named DC's table routes (after a create_table)."""

    dc_name: str = ""


@dataclass(frozen=True)
class GrantOwnership(Message):
    """Install Section 6 disjoint update rights for one logical table.

    The rule is a stable-hash partition map: this TC owns key ``k`` iff
    ``stable_key_hash(k) % modulus in residues``.  ``owners[p]`` names the
    TC owning partition ``p`` — that is what a :class:`Redirect` quotes,
    so the router can re-aim a misrouted write without a second lookup.
    A built-in ``hash()`` would not do: str hashing is seed-randomized per
    process, and router and server must agree across processes.
    """

    table: str = ""
    modulus: int = 1
    residues: tuple = ()
    owners: tuple = ()


@dataclass(frozen=True)
class SharingMode(Message):
    """Set the server's default cross-TC read flavor (Section 6.2)."""

    mode: str = "read_committed"


@dataclass(frozen=True)
class DcRestarted(Message):
    """Supervisor prompt: the named DC was kill -9'd and healed.

    The TC server reconnects its DC client over the (re-bound) socket,
    re-registers, and resends its redo stream from the RSSP — the same
    §5.2.2 window the in-process ``_on_dc_restart`` drives.
    """

    dc_name: str = ""


@dataclass(frozen=True)
class TcRetryPending(Message):
    """Drive the server's zombie rollback/completion retries once."""


# -- transactions -------------------------------------------------------------


@dataclass(frozen=True)
class TxnBegin(Message):
    """Open a server-side transaction; answered by :class:`TxnBeginReply`."""


@dataclass(frozen=True)
class TxnBeginReply(Message):
    txn_id: int = 0


@dataclass(frozen=True)
class TxnWrite(Message):
    """One mutation: ``verb`` is insert/update/delete/increment.

    ``deferred`` requests the pipelined (batched) path, exactly like the
    in-process ``Transaction`` methods' keyword.
    """

    txn_id: int = 0
    verb: str = ""
    table: str = ""
    key: object = None
    value: object = None
    delta: object = 0
    deferred: bool = False


@dataclass(frozen=True)
class TxnAck(Message):
    """Positive acknowledgement for a txn op with no other payload."""

    txn_id: int = 0


@dataclass(frozen=True)
class TxnRead(Message):
    txn_id: int = 0
    table: str = ""
    key: object = None


@dataclass(frozen=True)
class TxnReadReply(Message):
    """``found`` distinguishes "no record" from a stored ``None`` value."""

    txn_id: int = 0
    found: bool = False
    value: object = None


@dataclass(frozen=True)
class TxnScan(Message):
    """Range read inside a transaction; ``limit=0`` means unlimited."""

    txn_id: int = 0
    table: str = ""
    low: object = None
    high: object = None
    limit: int = 0


@dataclass(frozen=True)
class TxnScanReply(Message):
    txn_id: int = 0
    rows: tuple = ()


@dataclass(frozen=True)
class TxnSync(Message):
    """Flush the transaction's deferred (batched) mutations now."""

    txn_id: int = 0


@dataclass(frozen=True)
class TxnCommit(Message):
    txn_id: int = 0


@dataclass(frozen=True)
class TxnAbort(Message):
    txn_id: int = 0


# -- cross-TC sharing (Section 6.2) -------------------------------------------


@dataclass(frozen=True)
class ReadOther(Message):
    """Lock-free cross-TC read; ``flavor=None`` uses the server default."""

    table: str = ""
    key: object = None
    flavor: object = None


@dataclass(frozen=True)
class ScanOther(Message):
    table: str = ""
    low: object = None
    high: object = None
    limit: int = 0
    flavor: object = None


# -- routing ------------------------------------------------------------------


@dataclass(frozen=True)
class Redirect(Message):
    """Retryable bounce: the named ``owner`` TC owns this key's partition."""

    table: str = ""
    key: object = None
    owner: str = ""


# -- maintenance --------------------------------------------------------------


@dataclass(frozen=True)
class TcCheckpoint(Message):
    """Run a TC checkpoint (RSSP advance + log truncation) server-side."""


@dataclass(frozen=True)
class TcCheckpointReply(Message):
    advanced: bool = False
    rssp: Lsn = 0
