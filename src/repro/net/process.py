"""Client side of the process deployment mode: proxy, transport, channel.

Three layers, bottom up:

- :class:`DcProcess` — the OS-process lifecycle: spawn a
  :func:`repro.net.dcserver.serve` child over a ``multiprocessing`` pipe,
  ``SIGKILL`` it, join it.  The journal path outlives the process, which
  is what makes kill-and-restart a *recovery* event rather than data loss.
- :class:`RemoteDc` — a proxy implementing the surface the TC, kernel and
  supervisor already use on an in-process ``DataComponent`` (``handle``
  via futures, ``register_tc``, catalog lookups, ``crashed`` /
  ``crash()`` / ``recover()`` / ``prompt_redo()``), so the rest of the
  system is oblivious to where the DC lives.  One proxy multiplexes any
  number of TCs over a single connection.
- :class:`ProcessChannel` — the :class:`~repro.net.channel.MessageChannel`
  request/post/pump surface over that proxy, plus the **pipelined async**
  path (:meth:`request_async` / :meth:`finish_async`): requests carry
  transport sequence numbers, a receiver thread completes futures as
  replies arrive — out of order is fine, because §4.2.1's unique request
  ids and DC-side idempotence were designed for exactly that delivery
  model.

The simulated-misbehavior knobs (loss/duplication/reordering, fault
injection) are **local-only**: this transport is a real pipe that
delivers reliably and in order, and the §4.2.1 resend machinery instead
gets exercised by killing the *process* (see docs/architecture.md §10).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import struct
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from queue import SimpleQueue
from typing import Callable, Optional

from repro.common.api import Message
from repro.common.config import ChannelConfig, DcConfig
from repro.common.errors import ReproError
from repro.dc.recovery import TableDescriptor
from repro.net import dcserver, rpc, shm, wire
from repro.net.channel import MessageChannel
from repro.net.eventloop import doorbell_frame
from repro.net.rpc import (
    AttachShm,
    CheckpointDcLog,
    CreateTable,
    ForceLogReply,
    ForceLogRequest,
    Hello,
    NegotiateCodec,
    RegisterTc,
    RemoteError,
    RsspHint,
    Shutdown,
    StatsRequest,
    TableList,
)
from repro.sim.metrics import Metrics


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast, no re-import); else
    ``spawn``.  Overridable via ``ChannelConfig.process_start_method``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class DcProcess:
    """One spawned DC server process and its pipe."""

    def __init__(
        self,
        name: str,
        config: Optional[DcConfig],
        journal_path: str,
        start_method: str = "",
        listen_path: str = "",
        fast_codec: bool = True,
    ) -> None:
        method = start_method or default_start_method()
        ctx = mp.get_context(method)
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=dcserver.serve,
            args=(child_conn, name, config, journal_path, listen_path, fast_codec),
            name=f"repro-dc-{name}",
            daemon=True,
        )
        self.process.start()
        # The parent must drop its copy of the child end, or a dead child
        # would never read as EOF.
        child_conn.close()

    def wait_hello(self, timeout: float = 30.0) -> Hello:
        if not self.conn.poll(timeout):
            self.kill()
            self.close_conn()
            raise ReproError("DC server did not say hello in time")
        kind, _seq, payload = rpc.unpack_frame(self.conn.recv_bytes())
        if kind != rpc.PUSH or not isinstance(payload, Hello):
            self.kill()
            self.close_conn()
            raise ReproError(f"unexpected first frame from DC server: {payload!r}")
        return payload

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL — the real process death the chaos tests rely on.

        Deliberately does *not* close ``self.conn``: once a transport's
        receiver thread reads this connection, closing the fd out from
        under it frees the fd number for immediate reuse by the *next*
        kernel's pipe, and the stale thread then steals frames from that
        connection (lost replies, corrupted framing).  The process death
        delivers EOF to the receiver, which drains and exits; the
        transport closes the fd only after joining it
        (:meth:`_Transport.close`)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def close_conn(self) -> None:
        """Close the pipe fd directly — only safe before a transport's
        receiver thread has started reading it (startup failures)."""
        try:
            self.conn.close()
        except OSError:
            pass

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout)


#: ``multiprocessing.Connection`` frames small payloads as a network-order
#: 4-byte length followed by the bytes (``_send_bytes``); concatenating
#: several such header+payload blocks into one buffer is therefore parse-
#: compatible with the peer's ``recv_bytes`` loop — which is what lets a
#: coalesced flush land many frames in a single write.
_FRAME_LEN = struct.Struct("!i")

#: Deferred bytes auto-flush threshold; keeps a pathological pipeline from
#: buffering unboundedly while still batching every realistic burst.
_COALESCE_BYTES = 64 * 1024


class _Transport:
    """Framed, multiplexed, bidirectional traffic over one connection.

    A receiver thread completes request futures by sequence number (out
    of order), forwards server-initiated traffic (force-log requests,
    RSSP-hint pushes) to a control thread — so a long TC log force never
    stalls reply delivery — and on EOF fails every outstanding future
    with ``None`` (the "lost reply" the resend contracts absorb).

    **Coalescing** (docs/architecture.md §17): a ``submit(..., defer=True)``
    only buffers the frame; :meth:`flush` (or the next non-deferred send,
    which must not overtake buffered frames) writes the whole run as one
    vectored write — one syscall for a pipelined burst instead of one per
    frame.  Latency-sensitive ops never park: every synchronous send
    flushes first, and callers flush explicitly at sync/commit/collect
    points.  ``fast`` is the negotiated fast-codec encode map (empty =
    tagged); ``_scratch`` is the per-connection reusable encode buffer.
    """

    def __init__(
        self,
        conn,
        *,
        on_server_request: Callable[[Message], Message],
        on_push: Callable[[Message], None],
        on_down: Callable[[], None],
        fast: Optional[dict] = None,
        shm_link: Optional[shm.ShmLink] = None,
        shm_spin: int = 200,
        shm_park_s: float = 0.005,
    ) -> None:
        self._conn = conn
        self._on_server_request = on_server_request
        self._on_push = on_push
        self._on_down = on_down
        self.fast: dict = fast or {}
        #: Optional ring pair (net/shm.py).  The receive leg is live from
        #: the start — the server's replies may ride the ring the moment
        #: it attaches — but the transmit leg stays off until the AttachShm
        #: ack proves the server attached (:meth:`enable_shm_tx`).
        self._shm = shm_link
        self._shm_tx = False
        #: A link abandoned mid-flight (corrupt ring) is parked here so the
        #: final close() can still release and unlink its segments.
        self._shm_stale: Optional[shm.ShmLink] = None
        self._shm_spin = max(int(shm_spin), 1)
        self._shm_park_s = shm_park_s if shm_park_s > 0 else 0.005
        self._futures: dict[int, Future] = {}
        self._flock = threading.Lock()
        self._wlock = threading.Lock()
        self._scratch = bytearray()
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._seq = itertools.count(1)
        self._down = False
        self._closed = False
        self._ctrl: SimpleQueue = SimpleQueue()
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name="dc-transport-recv", daemon=True
        )
        self._ctrl_thread = threading.Thread(
            target=self._ctrl_loop, name="dc-transport-ctrl", daemon=True
        )
        self._recv_thread.start()
        self._ctrl_thread.start()

    def enable_shm_tx(self) -> None:
        """Turn the client->server ring on (after the server's AttachShm
        ack); until then every frame takes the pipe."""
        with self._wlock:
            self._shm_tx = True

    def submit(self, message: Message, defer: bool = False) -> Future:
        """Send one request; the returned future resolves to the reply
        message, or ``None`` if the connection died first.

        With ``defer=True`` the frame is only buffered; it reaches the
        wire at the next :meth:`flush` or non-deferred send.  The future
        still resolves normally once the reply comes back.
        """
        future: Future = Future()
        seq = next(self._seq)
        with self._flock:
            if self._down:
                future.set_result(None)
                return future
            self._futures[seq] = future
        try:
            self._send(rpc.REQUEST, seq, message, defer=defer)
        except (OSError, ValueError):
            with self._flock:
                self._futures.pop(seq, None)
            if not future.done():
                future.set_result(None)
        return future

    def _send(self, kind: int, seq: int, payload: object, defer: bool = False) -> None:
        with self._wlock:
            data = rpc.pack_frame(kind, seq, payload, self.fast, self._scratch)
            if defer:
                self._pending.append(data)
                self._pending_bytes += len(data)
                if self._pending_bytes >= _COALESCE_BYTES:
                    self._flush_locked()
                return
            if self._pending:
                # A non-deferred frame must not overtake buffered ones:
                # join it to the run and flush everything in order.
                self._pending.append(data)
                self._flush_locked()
                return
            if self._ring_send_locked(data):
                self._doorbell_locked()
                return
            self._conn.send_bytes(data)

    def _ring_send_locked(self, data: bytes) -> bool:
        """Try the client->server ring (wlock held).  False = take the pipe
        (tx leg off, frame oversized, or ring full past a bounded spin).
        Ring frames may overtake concurrently pipe-buffered ones; the
        §4.2.1 contracts absorb that — in-flight requests are independent
        (unique ids, replies correlate by seq) and callers drain pending
        futures before order-sensitive points (commit, sync, collect)."""
        link = self._shm
        if not self._shm_tx or link is None:
            return False
        ring = link.c2s
        if len(data) > ring.max_frame:
            return False
        if ring.try_send(data):
            return True
        # Ring full: the consumer is mid-drain, which at memcpy speed is
        # shorter than a pipe syscall — spin briefly before giving up.
        for _ in range(self._shm_spin):
            if self._down:
                return False
            if ring.try_send(data):
                return True
        return False

    def _doorbell_locked(self) -> None:
        """Wake a parked server-side consumer (wlock held): read-and-clear
        the parked flag, and iff it was set, a pipe write is owed."""
        link = self._shm
        if link is not None and link.c2s.take_parked():
            try:
                self._conn.send_bytes(doorbell_frame())
            except (OSError, ValueError):
                pass  # death is detected by the receiver's EOF, not here

    def _flush_locked(self) -> None:
        frames, self._pending = self._pending, []
        self._pending_bytes = 0
        if not frames:
            return
        if self._shm_tx and self._shm is not None:
            # Ring-first per frame; whatever does not fit stays on the
            # pipe in its original relative order.
            rest = [f for f in frames if not self._ring_send_locked(f)]
            self._doorbell_locked()
            frames = rest
            if not frames:
                return
        if len(frames) == 1:
            self._conn.send_bytes(frames[0])
            return
        blob = b"".join(
            _FRAME_LEN.pack(len(frame)) + frame for frame in frames
        )
        # One vectored write for the whole run.  Blocking fds can still
        # write partially (sockets, large runs), so loop the memoryview;
        # a failure mid-run means the connection died — the receiver's
        # EOF strands the affected futures exactly like any lost reply.
        view = memoryview(blob)
        fd = self._conn.fileno()
        while view:
            view = view[os.write(fd, view):]

    def flush(self) -> None:
        """Write out deferred frames now; quiet on a dead connection
        (the stranded-future path already covers the loss)."""
        try:
            with self._wlock:
                self._flush_locked()
        except (OSError, ValueError):
            pass

    def _handle_frame(self, data: bytes) -> None:
        kind, seq, payload = rpc.unpack_frame(data)
        if kind == rpc.REPLY:
            with self._flock:
                future = self._futures.pop(seq, None)
            if future is not None and not future.done():
                future.set_result(payload)
        elif kind in (rpc.SERVER_REQUEST, rpc.PUSH):
            self._ctrl.put((kind, seq, payload))
        # DOORBELL (and anything else) carries nothing: the wakeup already
        # happened by virtue of the pipe read.

    def _recv_pipe(self) -> Optional[bytes]:
        """One blocking pipe read; None = EOF/closed (the down path)."""
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            return None
        except (TypeError, ValueError):
            # A connection closed concurrently with an in-flight
            # ``recv_bytes`` surfaces as ``TypeError`` (the handle is
            # ``None`` mid-read) rather than ``OSError``.  Treat it
            # like EOF so the cleanup below still strands futures and
            # fires ``on_down`` instead of killing this thread.
            return None

    def _drain_ring(self, ring) -> bool:
        """Deliver every frame currently in the server->client ring."""
        worked = False
        while True:
            try:
                frame = ring.try_recv()
            except shm.ShmError:
                # Corrupt ring (a kill -9 can land between a length write
                # and its payload): abandon the rings, keep the pipe.
                self._shm_tx = False
                self._shm_stale, self._shm = self._shm, None
                return worked
            if frame is None:
                return worked
            worked = True
            try:
                self._handle_frame(frame)
            except wire.WireError:
                self._shm_tx = False
                self._shm_stale, self._shm = self._shm, None
                return worked

    def _recv_loop(self) -> None:
        link = self._shm
        while True:
            if link is not None and self._shm is not None:
                ring = self._shm.s2c
                if self._drain_ring(ring):
                    continue
                # Spin-then-park (net/shm.py): bounded spin on the ring,
                # then set the parked flag, re-check (closing the race
                # with a producer that wrote just before the flag), and
                # sleep in a short pipe poll — the producer's DOORBELL
                # write is the wakeup; the timeout is only a backstop.
                for _ in range(self._shm_spin):
                    if ring.readable():
                        break
                else:
                    ring.park()
                    try:
                        if ring.readable():
                            continue  # a producer raced the park; drain
                        try:
                            if not self._conn.poll(self._shm_park_s):
                                continue  # backstop timeout; re-check ring
                        except (OSError, ValueError):
                            break
                    finally:
                        ring.unpark()
                    # poll() said readable, so this read cannot block.
                    data = self._recv_pipe()
                    if data is None:
                        break
                    try:
                        self._handle_frame(data)
                    except wire.WireError:
                        break
                continue
            data = self._recv_pipe()
            if data is None:
                break
            try:
                self._handle_frame(data)
            except wire.WireError:
                break
        if self._shm is not None:
            # EOF leftovers: frames the server ring-wrote before dying or
            # closing still complete their futures (they are real replies).
            self._drain_ring(self._shm.s2c)
        with self._flock:
            self._down = True
            stranded = list(self._futures.values())
            self._futures.clear()
        for future in stranded:
            if not future.done():
                future.set_result(None)
        self._ctrl.put(None)
        self._on_down()

    def _ctrl_loop(self) -> None:
        while True:
            item = self._ctrl.get()
            if item is None:
                return
            kind, seq, payload = item
            if kind == rpc.SERVER_REQUEST:
                try:
                    reply = self._on_server_request(payload)
                except ReproError as exc:
                    reply = RemoteError(tc_id=0, kind=type(exc).__name__, text=str(exc))
                try:
                    self._send(rpc.CLIENT_REPLY, seq, reply)
                except (OSError, ValueError):
                    pass
            else:
                self._on_push(payload)

    @property
    def down(self) -> bool:
        return self._down

    def close(self) -> None:
        """Join the receiver, then close the fd and rings (idempotent —
        proxy close paths and the down path may both land here, and a
        loop-managed fd must never be double-closed).

        Every caller kills (or joins) the server process first, so the
        receiver is guaranteed an EOF and drains on its own.  Joining
        *before* closing matters: closing the fd while the receiver is
        still parked on it frees the fd number for immediate reuse by
        the next kernel's pipe, and the stale thread would then steal
        frames (e.g. a ``RegisterTc`` reply) from that new connection.
        """
        if self._closed:
            return
        self._closed = True
        if threading.current_thread() is not self._recv_thread:
            self._recv_thread.join(timeout=10.0)
        try:
            self._conn.close()
        except OSError:
            pass
        self._shm_tx = False
        for link_attr in ("_shm", "_shm_stale"):
            link = getattr(self, link_attr)
            setattr(self, link_attr, None)
            if link is not None:
                link.close()  # creator side unlinks its pinned segments


class _RemoteTableHandle:
    """Catalog-only stand-in for ``TableHandle`` (no structure object —
    record access goes through messages, as §4.2.1 intends)."""

    __slots__ = ("descriptor",)

    def __init__(self, descriptor: TableDescriptor) -> None:
        self.descriptor = descriptor


class RemoteDc:
    """Proxy for a DC server process; drop-in for the TC/kernel surface."""

    def __init__(
        self,
        name: str,
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        journal_path: str = "",
        start_method: str = "",
        request_timeout_s: float = 30.0,
        listen_path: str = "",
        fast_codec: bool = True,
        shm_ring_bytes: int = 0,
        shm_tag: str = "",
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ) -> None:
        self.name = name
        self.config = config
        self.metrics = metrics or Metrics()
        self.journal_path = journal_path
        self.start_method = start_method
        self.request_timeout_s = request_timeout_s
        #: Shared-memory ring sizing (0 = pipe only).  The ring pair is
        #: created client-side under names pinned to ``shm_tag`` (default:
        #: the journal path — the DC's durable identity), so respawns
        #: re-create the same names and stale segments get replaced.
        self.shm_ring_bytes = shm_ring_bytes
        self.shm_tag = shm_tag
        self.shm_spin = shm_spin
        self.shm_park_ms = shm_park_ms
        #: Listener address the server additionally binds ("" = parent
        #: pipe only): a Unix socket path, or ``tcp://host:port`` for the
        #: TCP data plane (port 0 = ephemeral; the resolved address is
        #: pinned back here from the Hello).  TC server processes connect
        #: here via :class:`DcClient` — the TC service tier (§16) shares
        #: one DC process among many TC processes this way.
        self.listen_path = listen_path
        #: Negotiate the fast-path codec with the server (False simulates
        #: a tagged-only peer; the wire stays interoperable either way).
        self.fast_codec = fast_codec
        #: Crash listeners ``fn(name, kind)`` — the supervisor subscribes.
        self.on_crash: list[Callable[[str, str], None]] = []
        #: Restart listeners ``fn(dc)``, fired by :meth:`prompt_redo` after
        #: the per-registration prompts.  The TC service deployment hooks
        #: these to forward the §5.2.1 redo prompt to its TC *processes*
        #: (which hold their own connections to the restarted server).
        self.restart_listeners: list[Callable[["RemoteDc"], None]] = []
        #: tc_id -> callbacks, kept client-side and re-installed (via
        #: :class:`RegisterTc`) on every restart of the server process.
        self._registrations: dict[int, dict] = {}
        self._tables: dict[str, _RemoteTableHandle] = {}
        self._lock = threading.Lock()
        self._crashed = False
        self._down_handled = False
        self._closing = False
        self.restarts = 0
        self.last_pid: Optional[int] = None
        self._start()

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        if not self.journal_path:
            raise ReproError("RemoteDc needs a journal_path (the DC's volume)")
        self._process = DcProcess(
            self.name,
            self.config,
            self.journal_path,
            self.start_method,
            self.listen_path,
            self.fast_codec,
        )
        hello = self._process.wait_hello()
        self.last_pid = hello.pid
        if hello.listen_addr:
            # Pin the resolved listener address: a tcp://host:0 request
            # binds an ephemeral port, and respawns after a crash must
            # rebind the *same* concrete port or DC-pool clients could
            # never reconnect across a heal.
            self.listen_path = hello.listen_addr
        self._prime_tables(hello.tables)
        self._down_handled = False
        fast = wire.negotiate(hello.fast_codec) if self.fast_codec else {}
        link = self._create_shm_link()
        self._transport = _Transport(
            self._process.conn,
            on_server_request=self._serve_force,
            on_push=self._serve_push,
            on_down=self._note_down,
            fast=fast,
            shm_link=link,
            shm_spin=self.shm_spin or 200,
            shm_park_s=(self.shm_park_ms or 5.0) / 1000.0,
        )
        if fast:
            # Enable the server->client leg too.  Runs after every
            # (re)start, so a respawned server re-negotiates from scratch.
            self.control(NegotiateCodec(tc_id=0, vocab=wire.fast_vocabulary()))
        self._attach_shm(link)

    def _shm_link_tag(self) -> str:
        return self.shm_tag or self.journal_path

    def _create_shm_link(self) -> Optional[shm.ShmLink]:
        """Create the pinned ring pair before the transport starts, so the
        receive leg is ring-aware from the first frame the server could
        possibly ring-write.  Failure (no /dev/shm, exhausted quota) falls
        back to the pipe silently — shm is an optimization, never a
        requirement."""
        if not self.shm_ring_bytes:
            return None
        tag = self._shm_link_tag()
        if not tag:
            return None
        try:
            return shm.ShmLink.create(tag, self.shm_ring_bytes)
        except (shm.ShmError, OSError):
            self.metrics.incr("remote_dc.shm_create_failures")
            return None

    def _attach_shm(self, link: Optional[shm.ShmLink]) -> None:
        """The AttachShm handshake: only the server's ack enables our
        transmit leg (frames are self-describing, so its replies may ride
        the ring even before the ack reaches us)."""
        if link is None:
            return
        try:
            self.control(
                AttachShm(
                    tc_id=0,
                    c2s_name=link.c2s.name,
                    s2c_name=link.s2c.name,
                    spin=self.shm_spin or 200,
                    park_ms=self.shm_park_ms or 5.0,
                )
            )
        except ReproError:
            # Server could not attach: stay on the pipe (the armed receive
            # leg is harmless — its ring just stays empty).
            self.metrics.incr("remote_dc.shm_attach_failures")
            return
        self._transport.enable_shm_tx()
        self.metrics.incr("remote_dc.shm_attached")

    def _prime_tables(self, tables: tuple) -> None:
        with self._lock:
            for name, kind, versioned in tables:
                self._tables[name] = _RemoteTableHandle(
                    TableDescriptor(name=name, kind=kind, versioned=versioned)
                )

    def _note_down(self) -> None:
        fire = False
        with self._lock:
            if not self._down_handled:
                self._down_handled = True
                if not self._closing:
                    self._crashed = True
                    fire = True
        if fire:
            self.metrics.incr("remote_dc.process_deaths")
            for listener in list(self.on_crash):
                listener(self.name, "dc")

    @property
    def crashed(self) -> bool:
        if not self._crashed and not self._closing and not self._process.alive:
            # Poll fallback: the receiver thread may not have seen EOF yet.
            self._note_down()
        return self._crashed

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def crash(self) -> None:
        """SIGKILL the server process — a *real* fail-stop, not a flag."""
        self._process.kill()
        self._note_down()

    def recover(self, notify_tcs: bool = True) -> dict[str, object]:
        """Restart the server on the same journal; re-register every TC.

        The new process replays the journal and runs DC-local recovery
        before saying hello; with ``notify_tcs`` the §5.2.1 redo prompt
        then runs client-side so the TC resends its redo stream over the
        new connection.
        """
        if self._process.alive:
            self._process.kill()
        self._transport.close()
        self._start()
        self._crashed = False
        self.restarts += 1
        self.metrics.incr("remote_dc.restarts")
        with self._lock:
            tc_ids = list(self._registrations)
        for tc_id in tc_ids:
            self.control(RegisterTc(tc_id=tc_id))
        if notify_tcs:
            self.prompt_redo()
        return {"restarted": True, "pid": self.last_pid, "restarts": self.restarts}

    def prompt_redo(self) -> None:
        """Re-drive the out-of-band restart prompt (idempotent)."""
        with self._lock:
            prompts = [
                reg["on_dc_restart"]
                for reg in self._registrations.values()
                if reg.get("on_dc_restart") is not None
            ]
        for prompt in prompts:
            prompt(self)
        for listener in list(self.restart_listeners):
            listener(self)

    def shutdown(self) -> None:
        """Graceful stop: ask the server to exit, then make sure it did."""
        self._closing = True
        try:
            self.call(Shutdown(tc_id=0), timeout=5.0)
        except ReproError:
            pass
        self._process.join(5.0)
        self._process.kill()
        self._transport.close()

    # -- messaging ----------------------------------------------------------

    def submit(self, message: Message, defer: bool = False) -> Future:
        return self._transport.submit(message, defer=defer)

    def flush(self) -> None:
        """Push any coalesced (deferred) frames onto the wire now."""
        self._transport.flush()

    def call(self, message: Message, timeout: Optional[float] = None) -> object:
        """Send and wait; ``None`` on timeout or a dead connection (the
        caller's resend machinery takes over, as for any lost reply)."""
        future = self._transport.submit(message)
        try:
            return future.result(
                timeout if timeout is not None else self.request_timeout_s
            )
        except FutureTimeout:
            self.metrics.incr("remote_dc.request_timeouts")
            return None

    def control(self, message: Message, timeout: Optional[float] = None) -> Message:
        """A call that must succeed: raises on loss, death or RemoteError."""
        reply = self.call(message, timeout)
        if reply is None:
            raise ReproError(
                f"DC {self.name}: no reply to {type(message).__name__}"
                + (" (process down)" if self.crashed else "")
            )
        if isinstance(reply, RemoteError):
            raise ReproError(f"DC {self.name}: {reply.kind}: {reply.text}")
        return reply

    def handle(self, message: Message) -> Optional[Message]:
        """In-process-compatible synchronous dispatch (used by tests and
        the base channel); the TC's hot path goes through ProcessChannel."""
        reply = self.call(message)
        if isinstance(reply, RemoteError):
            raise ReproError(f"DC {self.name}: {reply.kind}: {reply.text}")
        return reply

    # -- the server-initiated legs ------------------------------------------

    def _serve_force(self, message: Message) -> Message:
        if not isinstance(message, ForceLogRequest):
            raise ReproError(f"unexpected server request: {message!r}")
        with self._lock:
            registration = self._registrations.get(message.tc_id)
        force = registration.get("force_log") if registration else None
        eosl = force(message.lsn) if force is not None else message.lsn
        return ForceLogReply(tc_id=message.tc_id, eosl=eosl)

    def _serve_push(self, message: Message) -> None:
        if isinstance(message, RsspHint):
            with self._lock:
                hints = [
                    reg["on_rssp_hint"]
                    for reg in self._registrations.values()
                    if reg.get("on_rssp_hint") is not None
                ]
            for hint in hints:
                hint(message.dc_name or self.name, message.lsn)

    # -- the DataComponent surface ------------------------------------------

    def register_tc(
        self,
        tc_id: int,
        force_log=None,
        on_dc_restart=None,
        on_rssp_hint=None,
    ) -> None:
        with self._lock:
            self._registrations[tc_id] = {
                "force_log": force_log,
                "on_dc_restart": on_dc_restart,
                "on_rssp_hint": on_rssp_hint,
            }
        self.control(RegisterTc(tc_id=tc_id))

    def unregister_tc(self, tc_id: int) -> None:
        with self._lock:
            self._registrations.pop(tc_id, None)

    def create_table(
        self,
        name: str,
        kind: str = "btree",
        versioned: bool = False,
        bucket_count: int = 16,
    ) -> None:
        self.control(
            CreateTable(
                tc_id=0,
                name=name,
                kind=kind,
                versioned=versioned,
                bucket_count=bucket_count,
            )
        )
        with self._lock:
            self._tables[name] = _RemoteTableHandle(
                TableDescriptor(name=name, kind=kind, versioned=versioned)
            )

    def table_names(self) -> list[str]:
        with self._lock:
            return list(self._tables)

    def table(self, name: str) -> _RemoteTableHandle:
        with self._lock:
            handle = self._tables.get(name)
        if handle is None:
            self.refresh_catalog()
            with self._lock:
                handle = self._tables.get(name)
        if handle is None:
            raise ReproError(f"DC {self.name}: no table {name!r}")
        return handle

    def refresh_catalog(self) -> None:
        reply = self.control(TableList(tc_id=0))
        self._prime_tables(reply.tables)

    def checkpoint_dc_log(self) -> bool:
        reply = self.control(CheckpointDcLog(tc_id=0))
        return reply.advanced

    def stats(self) -> dict[str, object]:
        reply = self.control(StatsRequest(tc_id=0))
        return reply.payload


class DcClient(RemoteDc):
    """A socket-connected proxy to an *already running* DC server.

    Same wire protocol, same proxy surface as :class:`RemoteDc`, but no
    process lifecycle: the server was spawned by someone else (the TC
    service deployment) and exposed a Unix socket (``RemoteDc
    listen_path`` / ``dcserver.bind_unix_listener``).  TC server processes
    use this to share one DC process as a pool — each TC process holds its
    own connection and registers its own tc_id, and the DC's force-log
    bridge aims at whichever connection registered that TC.

    ``crash()`` is refused (a client must not kill a shared server);
    ``recover()`` reconnects over the (re-bound) socket after the *owner*
    healed the process, then re-registers and optionally re-drives the
    redo prompt — which is how a TC server rejoins a kill -9'd DC.
    """

    def __init__(
        self,
        name: str,
        socket_path: str,
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        request_timeout_s: float = 30.0,
        connect_retry_s: float = 10.0,
        fast_codec: bool = True,
        shm_ring_bytes: int = 0,
        shm_tag: str = "",
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ) -> None:
        self.socket_path = socket_path
        self.connect_retry_s = connect_retry_s
        super().__init__(
            name,
            config=config,
            metrics=metrics,
            journal_path="",  # the server owns the volume, not this client
            request_timeout_s=request_timeout_s,
            fast_codec=fast_codec,
            shm_ring_bytes=shm_ring_bytes,
            # No default tag here: many clients share one DC socket, and a
            # guessed tag colliding across clients would let one unlink
            # the other's live segments.  Callers that want rings must
            # pass a tag that is unique per *client* (the TC server passes
            # its own journal path + the DC name).
            shm_tag=shm_tag,
            shm_spin=shm_spin,
            shm_park_ms=shm_park_ms,
        )

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        import time

        deadline = time.monotonic() + self.connect_retry_s
        while True:
            try:
                conn = dcserver.connect_any(self.socket_path)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"DC {self.name}: cannot connect to {self.socket_path}"
                    )
                time.sleep(0.05)
        if not conn.poll(self.request_timeout_s):
            conn.close()
            raise ReproError(f"DC {self.name}: no hello on {self.socket_path}")
        kind, _seq, payload = rpc.unpack_frame(conn.recv_bytes())
        if kind != rpc.PUSH or not isinstance(payload, Hello):
            conn.close()
            raise ReproError(f"unexpected first frame from DC server: {payload!r}")
        self._conn = conn
        self.last_pid = payload.pid
        self._prime_tables(payload.tables)
        self._down_handled = False
        fast = wire.negotiate(payload.fast_codec) if self.fast_codec else {}
        link = self._create_shm_link()
        self._transport = _Transport(
            conn,
            on_server_request=self._serve_force,
            on_push=self._serve_push,
            on_down=self._note_down,
            fast=fast,
            shm_link=link,
            shm_spin=self.shm_spin or 200,
            shm_park_s=(self.shm_park_ms or 5.0) / 1000.0,
        )
        if fast:
            self.control(NegotiateCodec(tc_id=0, vocab=wire.fast_vocabulary()))
        self._attach_shm(link)

    def _shm_link_tag(self) -> str:
        return self.shm_tag  # never guessed — see __init__

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def pid(self) -> Optional[int]:
        return self.last_pid

    def crash(self) -> None:
        raise ReproError(
            f"DC {self.name} is shared; only its owning deployment may kill it"
        )

    def recover(self, notify_tcs: bool = True) -> dict[str, object]:
        """Reconnect to the healed server and re-register this client's TCs."""
        self._transport.close()
        self._start()
        self._crashed = False
        self.restarts += 1
        self.metrics.incr("dc_client.reconnects")
        with self._lock:
            tc_ids = list(self._registrations)
        for tc_id in tc_ids:
            self.control(RegisterTc(tc_id=tc_id))
        if notify_tcs:
            self.prompt_redo()
        return {"restarted": True, "pid": self.last_pid, "restarts": self.restarts}

    def close(self) -> None:
        """Terminal: drop the connection (the server keeps serving others).

        Saying goodbye matters: a bare ``fd.close()`` does not wake our
        receiver (the blocked read keeps the socket referenced, so no FIN
        is even sent) and the join would burn its full timeout.  The
        Shutdown round-trip makes the *server* close the connection, which
        lands a real EOF in the receiver; the transport then joins it in
        microseconds.
        """
        self._closing = True
        try:
            self.control(Shutdown(tc_id=0), timeout=5.0)
        except ReproError:
            pass  # server already gone — EOF has been delivered anyway
        try:
            self._conn.close()
        except OSError:
            pass
        self._transport.close()

    def shutdown(self) -> None:
        self.close()


class ProcessChannel(MessageChannel):
    """The MessageChannel surface over a :class:`RemoteDc`, plus pipelining.

    ``request`` is synchronous (send, await the future).  ``post``/``pump``
    and :meth:`request_async`/:meth:`finish_async` expose the pipelined
    path: many requests in flight at once, futures completed out of order
    by the transport's receiver thread.  The §4.2.1 contracts make that
    safe — every request carries its unique id, replies correlate by id,
    and resends are absorbed by DC-side idempotence.
    """

    supports_async = True

    def __init__(
        self,
        dc: RemoteDc,
        config: Optional[ChannelConfig] = None,
        metrics=None,
        name: str = "",
        faults=None,
        tracer=None,
    ) -> None:
        config = config or ChannelConfig()
        if (
            config.loss_rate
            or config.duplicate_rate
            or config.reorder_window
            or faults is not None
        ):
            raise ReproError(
                "simulated misbehavior and fault injection are local-only; "
                "the process transport delivers reliably — kill the DC "
                "process instead (docs/architecture.md §10)"
            )
        super().__init__(dc, config, metrics, name=name, tracer=tracer)
        self._timeout_s = config.request_timeout_s
        self._in_flight: list[Future] = []

    # -- synchronous --------------------------------------------------------

    def _request(self, message: Message) -> Optional[Message]:
        self._note_request(message)
        self._charge_latency()
        reply = self.dc.call(message, self._timeout_s)
        return self._accept(reply)

    def _accept(self, reply: object) -> Optional[Message]:
        if reply is None:
            return None
        if isinstance(reply, RemoteError):
            raise ReproError(f"DC {self.dc.name}: {reply.kind}: {reply.text}")
        self._charge_latency()
        return reply

    # -- pipelined ----------------------------------------------------------

    def request_async(self, message: Message, defer: bool = False) -> Future:
        """Send now, return the reply future (completed out of order).

        ``defer=True`` coalesces: the frame is buffered transport-side and
        written (with the rest of the run, as one vectored write) at the
        next :meth:`flush` / non-deferred send — never silently dropped,
        because :meth:`finish_async` and :meth:`pump` flush first."""
        self._note_request(message)
        self._charge_latency()
        return self.dc.submit(message, defer=defer)

    def finish_async(self, future: Future) -> Optional[Message]:
        """Await one pipelined reply; ``None`` = lost (resend applies)."""
        self.dc.flush()
        try:
            reply = future.result(self._timeout_s)
        except FutureTimeout:
            self.metrics.incr("remote_dc.request_timeouts")
            return None
        return self._accept(reply)

    def flush(self) -> None:
        """Push deferred frames to the wire without awaiting replies."""
        self.dc.flush()

    def post(self, message: Message) -> None:
        self.metrics.incr("channel.posted")
        self._in_flight.append(self.request_async(message, defer=True))

    def pending(self) -> int:
        return len(self._in_flight)

    def pump(self) -> list[Message]:
        self.dc.flush()
        futures, self._in_flight = self._in_flight, []
        replies: list[Message] = []
        for future in futures:
            reply = self.finish_async(future)
            if reply is not None:
                replies.append(reply)
        return replies
