"""A single-threaded ``selectors`` event loop for the DC/TC servers.

One loop owns every connection a server process serves: the parent pipe,
accepted listener sockets, and any shared-memory rings clients attach
(:mod:`repro.net.shm`).  Reads are non-blocking and drain whole bursts
into per-connection reassembly buffers (frames are the same 4-byte
network-order length prefix ``multiprocessing.connection`` writes, so
coalesced blobs from the PR 8 transport parse unchanged); writes go
through per-connection out-buffers with write-interest toggling, so a
slow reader defers frames instead of blocking the server and the loop
never busy-spins on a clogged socket.

Server thread count is thereby O(1) in the number of clients — the loop
*is* the server.  The §4.2.2 force-log bridge, which previously parked
the whole server on one connection's ``recv_bytes``, becomes
:meth:`EventLoop.pump_until`: a nested pump of the same selector that
keeps every other connection reading, writing and accepting while one
dispatch awaits its ``CLIENT_REPLY``.

Observability (the ``eventloop.*`` counter family, surfaced in
``StatsRequest`` payloads and the repro-bench/v2 snapshots —
:data:`repro.sim.metrics.EVENTLOOP_COUNTERS`):

- ``eventloop.connections_open`` — currently adopted connections;
- ``eventloop.frames_deferred`` — sends that could not fully drain and
  parked bytes in an out-buffer (write interest engaged);
- ``eventloop.wakeups`` — selector returns (doorbells, readiness, parks).
"""

from __future__ import annotations

import os
import selectors
import socket
import struct
import time
from collections import deque
from typing import Callable, Optional

from repro.net import rpc
from repro.sim.metrics import Metrics

_FRAME_LEN = struct.Struct("!i")
_READ_CHUNK = 1 << 18
#: Reassembly sanity bound; anything bigger is a corrupt length prefix.
_MAX_FRAME = 1 << 28
#: Backstop select timeout while shm rings are attached: doorbells are the
#: wakeup path, this only closes memory-ordering races (see net/shm.py).
_DEFAULT_PARK_S = 0.005
_DEFAULT_SPIN = 100

_doorbell_cache: Optional[bytes] = None


def doorbell_frame() -> bytes:
    """The prebuilt DOORBELL frame producers send down the pipe to wake a
    parked ring consumer (receivers discard it by kind)."""
    global _doorbell_cache
    if _doorbell_cache is None:
        _doorbell_cache = rpc.pack_frame(rpc.DOORBELL, 0, None)
    return _doorbell_cache


class Peer:
    """One adopted connection: fd, reassembly buffer, out-buffer, rings."""

    __slots__ = (
        "loop",
        "fd",
        "owner",
        "on_frame",
        "on_close",
        "closed",
        "shm",
        "_in",
        "_out",
        "_out_off",
        "_mask",
        "_pos",
    )

    def __init__(self, loop: "EventLoop", fd: int, owner, on_frame, on_close) -> None:
        self.loop = loop
        self.fd = fd
        self.owner = owner  # the closeable (Connection or socket)
        self.on_frame = on_frame
        self.on_close = on_close
        self.closed = False
        self.shm = None  # ShmLink: server consumes .c2s, produces .s2c
        self._in = bytearray()
        self._out = bytearray()
        self._out_off = 0
        self._mask = selectors.EVENT_READ
        self._pos = 0  # shared scan cursor into _in (see _deliver)

    def send_frame(self, data: bytes) -> None:
        """Queue one frame toward this peer; never blocks.

        With rings attached, frames that fit take the ring (plus a pipe
        doorbell iff the consumer parked); ring-borne frames may overtake
        fd-buffered ones, which the §4.2.1 contracts absorb — replies and
        CLIENT_REPLYs correlate by seq, pushes are order-free.  On a
        closed peer this raises ``BrokenPipeError`` so callers hit the
        same drop path a blocking send gave them.
        """
        if self.closed:
            raise BrokenPipeError(f"peer fd {self.fd} is closed")
        link = self.shm
        if link is not None and len(data) <= link.s2c.max_frame:
            if link.s2c.try_send(data):
                if link.s2c.take_parked():
                    self._queue(doorbell_frame())
                return
            # Ring full (slow consumer): fall through to the fd, which has
            # real backpressure via the out-buffer + write interest.
        self._queue(data)

    def _queue(self, data: bytes) -> None:
        self._out += _FRAME_LEN.pack(len(data))
        self._out += data
        self.flush()
        if not self.closed and self._out_off < len(self._out):
            self.loop._frames_deferred.incr()

    def flush(self) -> None:
        """Drain the out-buffer as far as the fd allows; toggle write
        interest to match what is left."""
        out = self._out
        while self._out_off < len(out):
            try:
                sent = os.write(self.fd, memoryview(out)[self._out_off :])
            except BlockingIOError:
                break
            except (BrokenPipeError, OSError):
                self.loop.close_peer(self)
                return
            self._out_off += sent
        if self._out_off >= len(out):
            out.clear()
            self._out_off = 0
        elif self._out_off > (1 << 16):
            del out[: self._out_off]
            self._out_off = 0
        self.loop._update_interest(self)

    @property
    def pending_out(self) -> int:
        return len(self._out) - self._out_off


class EventLoop:
    """The selector loop; see the module docstring."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics or Metrics()
        self._sel = selectors.DefaultSelector()
        self._peers: dict[int, Peer] = {}
        self._shm_peers: dict[int, Peer] = {}
        self._listeners: dict[int, socket.socket] = {}
        self._callbacks: deque = deque()
        self._stopped = False
        self._spin = _DEFAULT_SPIN
        self._park_s = _DEFAULT_PARK_S
        self._wakeups = self.metrics.counter("eventloop.wakeups")
        self._frames_deferred = self.metrics.counter("eventloop.frames_deferred")
        # Self-pipe: lets call_soon wake a blocked select from any thread.
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._sel.register(self._wake_r, selectors.EVENT_READ, ("wake", None))

    # -- registration --------------------------------------------------------

    def adopt(
        self,
        fileobj,
        on_frame: Callable[[Peer, bytes], None],
        on_close: Optional[Callable[[Peer], None]] = None,
    ) -> Peer:
        """Serve a connection (a ``multiprocessing.connection.Connection``
        or a connected socket) through the loop."""
        fd = fileobj.fileno()
        os.set_blocking(fd, False)
        peer = Peer(self, fd, fileobj, on_frame, on_close)
        self._peers[fd] = peer
        self._sel.register(fd, selectors.EVENT_READ, ("peer", peer))
        self.metrics.incr("eventloop.connections_open")
        self.metrics.incr("eventloop.connections_total")
        return peer

    def add_listener(
        self, listener: socket.socket, on_accept: Callable[[socket.socket], None]
    ) -> None:
        listener.setblocking(False)
        fd = listener.fileno()
        self._listeners[fd] = listener
        self._sel.register(fd, selectors.EVENT_READ, ("listener", on_accept))

    def attach_shm(self, peer: Peer, link, spin: int = 0, park_s: float = 0.0) -> None:
        """Serve a client's ring pair alongside its fd (AttachShm path)."""
        peer.shm = link
        self._shm_peers[peer.fd] = peer
        if spin > 0:
            self._spin = spin
        if park_s > 0:
            self._park_s = park_s
        self.metrics.incr("eventloop.shm_links")

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` on the loop (thread-safe; wakes a blocked select)."""
        self._callbacks.append(fn)
        try:
            os.write(self._wake_w, b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full = a wakeup is already pending

    # -- teardown ------------------------------------------------------------

    def close_peer(self, peer: Peer) -> None:
        """Drop one connection (idempotent; every close path funnels here
        so loop-managed fds are never double-closed)."""
        if peer.closed:
            return
        peer.closed = True
        self._peers.pop(peer.fd, None)
        self._shm_peers.pop(peer.fd, None)
        try:
            self._sel.unregister(peer.fd)
        except (KeyError, ValueError):
            pass
        if peer.shm is not None:
            peer.shm.close()
            peer.shm = None
        try:
            peer.owner.close()
        except OSError:
            pass
        self.metrics.incr("eventloop.connections_open", -1)
        if peer.on_close is not None:
            peer.on_close(peer)

    def stop(self) -> None:
        self._stopped = True

    def close(self) -> None:
        """Final teardown: best-effort drain of pending replies (a
        Shutdown ack must reach the client), then close everything."""
        for peer in list(self._peers.values()):
            if peer.pending_out:
                try:
                    os.set_blocking(peer.fd, True)
                    peer.flush()
                except OSError:
                    pass
        for peer in list(self._peers.values()):
            peer.on_close = None  # teardown, not a drop: no callbacks
            self.close_peer(peer)
        for listener in self._listeners.values():
            try:
                self._sel.unregister(listener.fileno())
            except (KeyError, ValueError):
                pass
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        try:
            self._sel.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        os.close(self._wake_r)
        os.close(self._wake_w)
        self._sel.close()

    # -- running -------------------------------------------------------------

    def run(self) -> None:
        while not self._stopped:
            self._run_once(None)

    def pump_until(
        self, predicate: Callable[[], bool], timeout_s: Optional[float] = None
    ) -> bool:
        """Nested pump: keep the whole loop serviced until ``predicate``
        holds (True) or the timeout/stop wins (False).  This is what the
        §4.2.2 force-log bridge parks on — dispatch of *new* requests is
        the caller's concern (they backlog), but reads, writes, accepts
        and ring traffic on every other connection keep flowing.
        """
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        while not self._stopped:
            if predicate():
                return True
            remaining: Optional[float] = 0.05
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                remaining = min(remaining, 0.05)
            self._run_once(remaining)
        return predicate()

    def _run_once(self, timeout: Optional[float]) -> None:
        while self._callbacks:
            self._callbacks.popleft()()
        parked = False
        if self._poll_shm():
            timeout = 0.0
        elif self._shm_peers:
            if self._spin_shm():
                timeout = 0.0
            else:
                for peer in self._shm_peers.values():
                    peer.shm.c2s.park()
                parked = True
                if any(
                    peer.shm.c2s.readable() for peer in self._shm_peers.values()
                ):
                    timeout = 0.0  # a producer raced the park; don't sleep
                elif timeout is None or timeout > self._park_s:
                    timeout = self._park_s
        try:
            events = self._sel.select(timeout)
        finally:
            if parked:
                for peer in self._shm_peers.values():
                    if peer.shm is not None:
                        peer.shm.c2s.unpark()
        self._wakeups.incr()
        for key, mask in events:
            tag, payload = key.data
            if tag == "wake":
                try:
                    while os.read(self._wake_r, 4096):
                        pass
                except (BlockingIOError, OSError):
                    pass
                continue
            if tag == "listener":
                self._accept(key.fd, payload)
                continue
            peer = payload
            if peer.closed:
                continue  # closed by an earlier event or a nested pump
            if mask & selectors.EVENT_WRITE:
                peer.flush()
            if peer.closed or not mask & selectors.EVENT_READ:
                continue
            self._read(peer)

    def _accept(self, fd: int, on_accept) -> None:
        listener = self._listeners.get(fd)
        if listener is None:
            return
        while True:
            try:
                client, _addr = listener.accept()
            except (BlockingIOError, OSError):
                return
            if client.family == socket.AF_INET:
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            on_accept(client)

    # -- shm -----------------------------------------------------------------

    def _poll_shm(self) -> bool:
        """Drain every attached ring; True if any frame was delivered."""
        worked = False
        for peer in list(self._shm_peers.values()):
            while not peer.closed and peer.shm is not None:
                try:
                    frame = peer.shm.c2s.try_recv()
                except Exception:
                    # Corrupt ring (stale segment): the fd path still
                    # works, so drop only the rings, keep the connection.
                    self.metrics.incr("eventloop.shm_errors")
                    self._shm_peers.pop(peer.fd, None)
                    peer.shm.close()
                    peer.shm = None
                    break
                if frame is None:
                    break
                worked = True
                self.metrics.incr("eventloop.shm_frames")
                peer.on_frame(peer, frame)
        return worked

    def _spin_shm(self) -> bool:
        for _ in range(self._spin):
            for peer in self._shm_peers.values():
                if peer.shm.c2s.readable():
                    return self._poll_shm()
        return False

    # -- fd plumbing ---------------------------------------------------------

    def _update_interest(self, peer: Peer) -> None:
        if peer.closed:
            return
        mask = selectors.EVENT_READ
        if peer.pending_out:
            mask |= selectors.EVENT_WRITE
        if mask != peer._mask:
            peer._mask = mask
            try:
                self._sel.modify(peer.fd, mask, ("peer", peer))
            except (KeyError, ValueError):
                pass

    def _read(self, peer: Peer) -> None:
        eof = False
        try:
            while True:
                chunk = os.read(peer.fd, _READ_CHUNK)
                if not chunk:
                    eof = True
                    break
                peer._in += chunk
                if len(chunk) < _READ_CHUNK:
                    break
        except BlockingIOError:
            pass
        except OSError:
            eof = True
        self._deliver(peer)
        if eof and not peer.closed:
            self.close_peer(peer)

    def _deliver(self, peer: Peer) -> None:
        """Reassemble and deliver complete frames.

        Re-entrant by design: the scan cursor lives on the peer
        (``peer._pos``), not in a local.  A handler may block in
        :meth:`pump_until` (the §4.2.2 force bridge), whose nested
        ``_read`` on this *same* peer re-enters here — and must deliver,
        because the frame the outer handler is pumping for (a force's
        CLIENT_REPLY) may be in this very buffer.  The cursor advances
        past a frame *before* its ``on_frame`` runs, so no frame is ever
        delivered twice; when the nested call returns, the outer loop
        re-reads the cursor and simply continues after the consumed
        frames.  Compaction resets the cursor, which is equally safe at
        any depth for the same reason: nobody holds a stale position
        across an ``on_frame`` call.
        """
        try:
            while not peer.closed:
                buf = peer._in
                pos = peer._pos
                if pos + 4 > len(buf):
                    break
                (length,) = _FRAME_LEN.unpack_from(buf, pos)
                if length < 0 or length > _MAX_FRAME:
                    self.metrics.incr("eventloop.protocol_errors")
                    self.close_peer(peer)
                    return
                if pos + 4 + length > len(buf):
                    break
                frame = bytes(buf[pos + 4 : pos + 4 + length])
                peer._pos = pos + 4 + length
                peer.on_frame(peer, frame)  # may re-enter on this peer
        finally:
            if peer._pos and not peer.closed:
                del peer._in[: peer._pos]
                peer._pos = 0
