"""Client side of the TC service tier: proxy, transaction handle, process.

The mirror image of :mod:`repro.net.process`, one layer up the stack:

- :class:`TcProcess` — the OS-process lifecycle for a
  :func:`repro.net.tcserver.serve` child.  The TC's *log journal* path
  outlives the process, which is what turns ``kill -9`` into a §5.3.2
  recovery event instead of lost commits.
- :class:`RemoteTc` — a proxy exposing the application-facing surface of
  :class:`~repro.tc.transactional_component.TransactionalComponent`
  (``begin`` / ``read_other`` / ``scan_other`` / ``checkpoint`` /
  ``stats`` / ``crash`` / ``restart`` / ``pending_zombies`` /
  ``retry_pending``) so workloads, the kernel and the supervisor run
  unchanged against a TC that lives in another process.
- :class:`RemoteTransaction` — the :class:`~repro.tc.
  transactional_component.Transaction` surface (insert/update/delete/
  increment/read/scan/sync/commit/abort, abort-on-error context manager)
  over :class:`~repro.net.tcrpc` messages.

Failure mapping follows the conventions the rest of the repo already
uses: a lost reply (server SIGKILLed mid-request) surfaces as
:class:`~repro.common.errors.CrashedError` — for a commit that is the
honest *indeterminate* outcome the chaos harness classifies; a
server-side :class:`~repro.common.errors.TransactionAborted` or deadlock
comes back as a typed ``RemoteError`` and is re-raised as
``TransactionAborted`` here; a Section 6 misroute comes back as a
:class:`~repro.net.tcrpc.Redirect` payload and is raised as
:class:`~repro.common.errors.TcRedirect` naming the owning TC — the
router's retry contract.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, Optional

from repro.common.api import Message
from repro.common.config import TcConfig
from repro.common.errors import (
    CrashedError,
    ReproError,
    TcRedirect,
    TransactionAborted,
)
from repro.common.ops import ReadFlavor
from repro.net import dcserver, rpc, shm, tcserver, wire
from repro.net.process import _Transport, default_start_method
from repro.net.rpc import (
    AttachShm,
    NegotiateCodec,
    RemoteError,
    Shutdown,
    StatsRequest,
)
from repro.net.tcrpc import (
    DcRestarted,
    GrantOwnership,
    ReadOther,
    Redirect,
    RefreshRoutes,
    ScanOther,
    SharingMode,
    TcCheckpoint,
    TcHello,
    TcRetryPending,
    TxnAbort,
    TxnBegin,
    TxnBeginReply,
    TxnCommit,
    TxnRead,
    TxnScan,
    TxnSync,
    TxnWrite,
)
from repro.sim.metrics import Metrics
from repro.tc.transactional_component import TransactionState


class TcProcess:
    """One spawned TC server process and its pipe."""

    def __init__(
        self,
        name: str,
        tc_id: int,
        tc_config: Optional[TcConfig],
        journal_path: str,
        dc_socks: dict[str, str],
        grants: Optional[list] = None,
        sharing_mode: str = "",
        start_method: str = "",
        request_timeout_s: float = 30.0,
        fast_codec: bool = True,
        shm_ring_bytes: int = 0,
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ) -> None:
        method = start_method or default_start_method()
        ctx = mp.get_context(method)
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=tcserver.serve,
            args=(
                child_conn,
                name,
                tc_id,
                tc_config,
                journal_path,
                dict(dc_socks),
                list(grants or []),
                sharing_mode,
                request_timeout_s,
                fast_codec,
                shm_ring_bytes,
                shm_spin,
                shm_park_ms,
            ),
            name=f"repro-tc-{name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def wait_hello(self, timeout: float = 30.0) -> TcHello:
        if not self.conn.poll(timeout):
            self.kill()
            self.close_conn()
            raise ReproError("TC server did not say hello in time")
        kind, _seq, payload = rpc.unpack_frame(self.conn.recv_bytes())
        if kind != rpc.PUSH or not isinstance(payload, TcHello):
            self.kill()
            self.close_conn()
            raise ReproError(f"unexpected first frame from TC server: {payload!r}")
        return payload

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL; the fd stays open until the transport joins its
        receiver (same fd-reuse hazard as :class:`~repro.net.process.
        DcProcess.kill`)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout)


class RemoteTransaction:
    """Client handle for one transaction living in a TC server process.

    Mirrors :class:`~repro.tc.transactional_component.Transaction`:
    the same method surface, the same terminal-state discipline, the same
    abort-on-error context manager — workloads cannot tell them apart.
    """

    #: Deferred-write acks in flight before a forced drain — bounds both
    #: client memory and the size of one coalesced burst.
    _MAX_PENDING = 64

    def __init__(self, tc: "RemoteTc", txn_id: int) -> None:
        self._tc = tc
        self.txn_id = txn_id
        self.state = TransactionState.ACTIVE
        #: A non-commit reply was lost: the server-side transaction may
        #: still be open (locks held, writes applied), so the abort must
        #: still be delivered even though this handle is done.
        self._reply_lost = False
        #: Reply futures of pipelined (deferred) writes: sent coalesced,
        #: drained before any dependent operation so errors (aborts,
        #: redirects) surface no later than the §4.2.1 contracts allow.
        self._pending: list = []

    # -- plumbing -----------------------------------------------------------

    def _call(self, message: Message, commit_stage: bool = False) -> Message:
        return self._accept(self._tc.call(message), commit_stage)

    def _accept(self, reply: object, commit_stage: bool = False) -> Message:
        if reply is None:
            # Lost reply: the server died (or timed out) with the request
            # possibly applied.  For commit that is the indeterminate
            # outcome §4.2 allows; either way this handle is unusable.
            if not commit_stage:
                self.state = TransactionState.ABORTED
                self._reply_lost = True
            raise CrashedError(f"TC {self._tc.name}")
        if isinstance(reply, Redirect):
            raise TcRedirect(reply.table, reply.key, reply.owner)
        if isinstance(reply, RemoteError):
            if reply.kind in ("TransactionAborted", "DeadlockError", "LockTimeoutError"):
                self.state = TransactionState.ABORTED
                raise TransactionAborted(self.txn_id, reply.text)
            raise ReproError(f"TC {self._tc.name}: {reply.kind}: {reply.text}")
        return reply

    def _drain(self, lenient: bool = False) -> None:
        """Flush the coalesced writes and collect every pipelined ack.

        Runs before any read/scan/sync/commit (and any non-deferred
        write), so a deferred write's failure — server-side abort,
        Section 6 redirect, lost reply — surfaces at the first point
        whose outcome could depend on it.  ``lenient`` (abort path)
        only reaps the futures: the abort itself is the answer.
        """
        if not self._pending:
            return
        futures, self._pending = self._pending, []
        self._tc.flush()
        failure: Optional[BaseException] = None
        for future in futures:
            try:
                reply = future.result(self._tc.request_timeout_s)
            except FutureTimeout:
                self._tc.metrics.incr("remote_tc.request_timeouts")
                reply = None
            if lenient or failure is not None:
                continue  # keep reaping so no future is left un-awaited
            try:
                self._accept(reply)
            except ReproError as exc:
                failure = exc
        if failure is not None:
            raise failure

    def _check_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionAborted(self.txn_id, f"transaction is {self.state.value}")

    def _write(
        self,
        verb: str,
        table: str,
        key: object,
        value: object = None,
        delta: object = 0,
        deferred: bool = False,
    ) -> None:
        self._check_active()
        message = TxnWrite(
            tc_id=self._tc.tc_id,
            txn_id=self.txn_id,
            verb=verb,
            table=table,
            key=key,
            value=value,
            delta=delta,
            deferred=deferred,
        )
        if deferred:
            # Client-side pipelining: buffer the frame (coalesced into one
            # vectored write with its neighbors) and keep going; the ack
            # is collected at the next drain point.  The server applies
            # its own deferred/batched path to the op, so both hops of
            # the §4.2.1 round trip shrink.
            self._pending.append(self._tc.submit(message, defer=True))
            if len(self._pending) >= self._MAX_PENDING:
                self._drain()
            return
        self._drain()
        self._call(message)

    # -- operations ---------------------------------------------------------

    def insert(self, table: str, key, value, deferred: bool = False) -> None:
        self._write("insert", table, key, value=value, deferred=deferred)

    def update(self, table: str, key, value, deferred: bool = False) -> None:
        self._write("update", table, key, value=value, deferred=deferred)

    def delete(self, table: str, key, deferred: bool = False) -> None:
        self._write("delete", table, key, deferred=deferred)

    def increment(self, table: str, key, delta, deferred: bool = False) -> None:
        self._write("increment", table, key, delta=delta, deferred=deferred)

    def read(self, table: str, key):
        self._check_active()
        self._drain()
        reply = self._call(
            TxnRead(tc_id=self._tc.tc_id, txn_id=self.txn_id, table=table, key=key)
        )
        return reply.value if reply.found else None

    def scan(self, table: str, low=None, high=None, limit: Optional[int] = None):
        self._check_active()
        self._drain()
        reply = self._call(
            TxnScan(
                tc_id=self._tc.tc_id,
                txn_id=self.txn_id,
                table=table,
                low=low,
                high=high,
                limit=limit or 0,
            )
        )
        return [tuple(row) for row in reply.rows]

    def sync(self) -> None:
        self._check_active()
        self._drain()
        self._call(TxnSync(tc_id=self._tc.tc_id, txn_id=self.txn_id))

    def commit(self) -> None:
        self._check_active()
        self._drain()
        self._call(
            TxnCommit(tc_id=self._tc.tc_id, txn_id=self.txn_id), commit_stage=True
        )
        self.state = TransactionState.COMMITTED

    def abort(self) -> None:
        if self.state is not TransactionState.ACTIVE and not self._reply_lost:
            return
        # Pipelined writes no longer matter individually — the abort is
        # the answer — but their futures must still be reaped (and the
        # coalescing buffer flushed so the server sees the ops this abort
        # is about to undo in order before the TxnAbort itself).
        try:
            self._drain(lenient=True)
        except ReproError:
            pass
        # After a lost reply the server's transaction may still be open;
        # the server treats an abort of an unknown transaction as already
        # aborted (presumed abort), so delivering it is always safe.
        self._reply_lost = False
        self._call(TxnAbort(tc_id=self._tc.tc_id, txn_id=self.txn_id))
        self.state = TransactionState.ABORTED

    # -- context manager: abort-on-error safety net --------------------------

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.state is TransactionState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                try:
                    self.abort()
                except ReproError:
                    pass  # the original exception matters more
        elif self._reply_lost:
            try:
                self.abort()
            except ReproError:
                pass


class RemoteTc:
    """Proxy for a TC server process; drop-in for the TC's app surface.

    Two modes:

    - **spawn mode** (default): this proxy owns the child process —
      ``crash()`` SIGKILLs it and ``restart()`` respawns it on the same
      journal with the current DC map and ownership grants, running the
      §5.3.2 record/page-reset protocol server-side before hello.
    - **connect mode** (``socket_path`` set): attach to an externally
      managed ``python -m repro serve-tc`` server; lifecycle calls are
      refused, everything else is identical.
    """

    def __init__(
        self,
        name: str,
        tc_id: int,
        journal_path: str = "",
        dcs: Optional[dict[str, str]] = None,
        config: Optional[TcConfig] = None,
        metrics: Optional[Metrics] = None,
        grants: Optional[list] = None,
        sharing_mode: str = "",
        start_method: str = "",
        request_timeout_s: float = 30.0,
        socket_path: str = "",
        fast_codec: bool = True,
        shm_ring_bytes: int = 0,
        shm_tag: str = "",
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ) -> None:
        self.name = name
        self.tc_id = tc_id
        #: Shared-memory ring sizing for the client<->TC link (0 = pipe
        #: only).  The same knobs travel to the server for its own
        #: DcClient legs, so ``transport="shm"`` rides rings on *both*
        #: hops of a transaction's round trip.
        self.shm_ring_bytes = shm_ring_bytes
        self.shm_tag = shm_tag
        self.shm_spin = shm_spin
        self.shm_park_ms = shm_park_ms
        #: Negotiate the fast-path codec with the server (False simulates
        #: a tagged-only client; the wire stays interoperable either way).
        self.fast_codec = fast_codec
        self.journal_path = journal_path
        self.dcs = dict(dcs or {})
        self.config = config
        self.metrics = metrics or Metrics()
        #: Ownership grants, kept client-side so a respawn re-installs the
        #: exact partition map the router is still using.
        self.grants: list = list(grants or [])
        self.sharing_mode = sharing_mode
        self.start_method = start_method
        self.request_timeout_s = request_timeout_s
        self.socket_path = socket_path
        #: Crash listeners ``fn(name, kind)`` — the supervisor subscribes.
        self.on_crash: list[Callable[[str, str], None]] = []
        self._lock = threading.Lock()
        self._crashed = False
        self._down_handled = False
        self._closing = False
        self.restarts = 0
        self.last_pid: Optional[int] = None
        self.last_recovered = False
        self._process: Optional[TcProcess] = None
        self._start()

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        if self.socket_path:
            self._connect()
            return
        if not self.journal_path:
            raise ReproError("RemoteTc needs a journal_path (the TC's log volume)")
        self._process = TcProcess(
            self.name,
            self.tc_id,
            self.config,
            self.journal_path,
            self.dcs,
            self.grants,
            self.sharing_mode,
            self.start_method,
            self.request_timeout_s,
            self.fast_codec,
            self.shm_ring_bytes,
            self.shm_spin,
            self.shm_park_ms,
        )
        try:
            hello = self._process.wait_hello()
        except ReproError:
            # The child either never came up or died inside §5.3.2 restart
            # (e.g. a DC it must redo against is also down).  Mark crashed
            # so the supervisor's heal loop retries after the DCs heal.
            self._mark_crashed_for_failed_start()
            raise CrashedError(f"TC {self.name} (restart failed)")
        self._adopt_hello(hello, self._process.conn)

    def _connect(self) -> None:
        import time

        deadline = time.monotonic() + self.request_timeout_s
        while True:
            try:
                conn = dcserver.connect_any(self.socket_path)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"TC {self.name}: cannot connect to {self.socket_path}"
                    )
                time.sleep(0.05)
        if not conn.poll(self.request_timeout_s):
            conn.close()
            raise ReproError(f"TC {self.name}: no hello on {self.socket_path}")
        kind, _seq, payload = rpc.unpack_frame(conn.recv_bytes())
        if kind != rpc.PUSH or not isinstance(payload, TcHello):
            conn.close()
            raise ReproError(f"unexpected first frame from TC server: {payload!r}")
        self._adopt_hello(payload, conn)

    def _adopt_hello(self, hello: TcHello, conn) -> None:
        self.last_pid = hello.pid
        self.last_recovered = hello.recovered
        self._conn = conn
        self._down_handled = False
        fast = wire.negotiate(hello.fast_codec) if self.fast_codec else {}
        link = self._create_shm_link()
        self._transport = _Transport(
            conn,
            on_server_request=self._reject_server_request,
            on_push=lambda _message: None,
            on_down=self._note_down,
            fast=fast,
            shm_link=link,
            shm_spin=self.shm_spin or 200,
            shm_park_s=(self.shm_park_ms or 5.0) / 1000.0,
        )
        if fast:
            # Enable the server->client leg; re-negotiated from scratch
            # after every restart/reconnect, so a respawned tagged-only
            # server (version skew) degrades the wire instead of breaking.
            self.control(NegotiateCodec(tc_id=self.tc_id, vocab=wire.fast_vocabulary()))
        self._attach_shm(link)

    def _create_shm_link(self) -> Optional[shm.ShmLink]:
        """The client<->TC ring pair, pinned to this TC's journal path (its
        durable identity).  Connect-mode clients must pass an explicit
        ``shm_tag`` — many of them may share one socket, and a guessed tag
        colliding across clients would unlink live segments."""
        if not self.shm_ring_bytes:
            return None
        tag = self.shm_tag or ("" if self.socket_path else self.journal_path)
        if not tag:
            return None
        try:
            return shm.ShmLink.create(tag, self.shm_ring_bytes)
        except (shm.ShmError, OSError):
            self.metrics.incr("remote_tc.shm_create_failures")
            return None

    def _attach_shm(self, link: Optional[shm.ShmLink]) -> None:
        if link is None:
            return
        try:
            self.control(
                AttachShm(
                    tc_id=self.tc_id,
                    c2s_name=link.c2s.name,
                    s2c_name=link.s2c.name,
                    spin=self.shm_spin or 200,
                    park_ms=self.shm_park_ms or 5.0,
                )
            )
        except ReproError:
            self.metrics.incr("remote_tc.shm_attach_failures")
            return
        self._transport.enable_shm_tx()
        self.metrics.incr("remote_tc.shm_attached")

    def _reject_server_request(self, message: Message) -> Message:
        raise ReproError(f"unexpected server request from TC: {message!r}")

    def _mark_crashed_for_failed_start(self) -> None:
        with self._lock:
            already = self._crashed
            self._crashed = True
            self._down_handled = True
        if not already:
            self.metrics.incr("remote_tc.failed_restarts")

    def _note_down(self) -> None:
        fire = False
        with self._lock:
            if not self._down_handled:
                self._down_handled = True
                if not self._closing:
                    self._crashed = True
                    fire = True
        if fire:
            self.metrics.incr("remote_tc.process_deaths")
            for listener in list(self.on_crash):
                listener(self.name, "tc")

    @property
    def crashed(self) -> bool:
        if (
            not self._crashed
            and not self._closing
            and self._process is not None
            and not self._process.alive
        ):
            self._note_down()
        return self._crashed

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else self.last_pid

    def crash(self) -> int:
        """SIGKILL the server process — a real fail-stop.

        Returns 0 for surface parity with ``TransactionalComponent.crash``
        (the in-memory tail-loss count); here nothing acknowledged is ever
        lost — that is the :class:`~repro.net.tcserver.DurableTcLog`
        contract — and the unacknowledged tail has no client-side count.
        """
        if self._process is None:
            raise ReproError(f"TC {self.name} is externally managed; cannot crash it")
        self._process.kill()
        self._note_down()
        return 0

    def restart(self, reset_mode: object = None) -> dict[str, object]:
        """Respawn on the same journal; §5.3.2 runs server-side pre-hello.

        ``reset_mode`` exists for surface parity with the in-process TC's
        ``restart(reset_mode)``; the server always record-resets (the
        tier's DCs are shared, so page-granularity reset is never safe).
        """
        if self._process is None:
            raise ReproError(f"TC {self.name} is externally managed; cannot restart it")
        if self._process.alive:
            self._process.kill()
        self._transport.close()
        self._start()
        self._crashed = False
        self.restarts += 1
        self.metrics.incr("remote_tc.restarts")
        return {
            "restarted": True,
            "pid": self.last_pid,
            "recovered": self.last_recovered,
            "restarts": self.restarts,
        }

    def shutdown(self) -> None:
        self._closing = True
        try:
            self.call(Shutdown(tc_id=self.tc_id), timeout=5.0)
        except ReproError:
            pass
        if self._process is not None:
            self._process.join(5.0)
            self._process.kill()
            self._transport.close()
            if self.shm_ring_bytes:
                # The child's own DcClient legs pin segments under
                # journal:dc tags; a child that had to be SIGKILLed (hung
                # shutdown) never unlinked them, and this TC is terminal —
                # no future incarnation will replace them.  Best-effort.
                for dc_name in self.dcs:
                    shm.unlink_by_tag(f"{self.journal_path}:{dc_name}")
        else:
            try:
                self._conn.close()
            except OSError:
                pass
            self._transport.close()

    def close(self) -> None:
        self.shutdown()

    # -- messaging ----------------------------------------------------------

    def submit(self, message: Message, defer: bool = False):
        """Pipelined send; ``defer=True`` coalesces (see ``_Transport``)."""
        return self._transport.submit(message, defer=defer)

    def flush(self) -> None:
        """Push any coalesced (deferred) frames onto the wire now."""
        self._transport.flush()

    def call(self, message: Message, timeout: Optional[float] = None) -> object:
        future = self._transport.submit(message)
        try:
            return future.result(
                timeout if timeout is not None else self.request_timeout_s
            )
        except FutureTimeout:
            self.metrics.incr("remote_tc.request_timeouts")
            return None

    def control(self, message: Message, timeout: Optional[float] = None) -> Message:
        reply = self.call(message, timeout)
        if reply is None:
            raise CrashedError(f"TC {self.name}")
        if isinstance(reply, RemoteError):
            if reply.kind in ("CrashedError", "ComponentUnavailableError"):
                raise CrashedError(f"TC {self.name}: {reply.text}")
            raise ReproError(f"TC {self.name}: {reply.kind}: {reply.text}")
        return reply

    # -- the TransactionalComponent app surface ------------------------------

    def begin(self) -> RemoteTransaction:
        reply = self.control(TxnBegin(tc_id=self.tc_id))
        if not isinstance(reply, TxnBeginReply):
            raise ReproError(f"TC {self.name}: unexpected begin reply {reply!r}")
        return RemoteTransaction(self, reply.txn_id)

    def read_other(self, table: str, key, flavor=ReadFlavor.READ_COMMITTED):
        reply = self.control(
            ReadOther(tc_id=self.tc_id, table=table, key=key, flavor=flavor)
        )
        return reply.value if reply.found else None

    def scan_other(
        self,
        table: str,
        low=None,
        high=None,
        limit: Optional[int] = None,
        flavor=ReadFlavor.READ_COMMITTED,
    ):
        reply = self.control(
            ScanOther(
                tc_id=self.tc_id,
                table=table,
                low=low,
                high=high,
                limit=limit or 0,
                flavor=flavor,
            )
        )
        return [tuple(row) for row in reply.rows]

    def checkpoint(self) -> bool:
        return self.control(TcCheckpoint(tc_id=self.tc_id)).advanced

    def stats(self) -> dict[str, object]:
        return self.control(StatsRequest(tc_id=self.tc_id)).payload

    def pending_zombies(self) -> int:
        """Supervisor surface; 0 while the process is down (nothing can be
        retried until :meth:`restart` anyway)."""
        if self.crashed:
            return 0
        reply = self.call(StatsRequest(tc_id=self.tc_id))
        if reply is None or isinstance(reply, RemoteError):
            return 0
        return int(reply.payload.get("pending_zombies", 0))

    def retry_pending(self) -> None:
        self.control(TcRetryPending(tc_id=self.tc_id))

    # -- deployment control plane --------------------------------------------

    def notify_dc_restart(self, dc_name: str) -> None:
        """Forward a DC heal to the server so it reconnects and re-drives
        the §5.2.1 redo prompt over its own socket.  Raises
        :class:`CrashedError` when this TC is itself down — the supervisor
        keeps the prompt queued and retries after healing the TC."""
        self.control(DcRestarted(tc_id=self.tc_id, dc_name=dc_name))

    def refresh_routes(self, dc) -> None:
        dc_name = dc if isinstance(dc, str) else dc.name
        self.control(RefreshRoutes(tc_id=self.tc_id, dc_name=dc_name))

    def grant(
        self, table: str, modulus: int, residues: tuple, owners: tuple
    ) -> None:
        """Install (and remember) a Section 6 ownership grant."""
        grant = (table, int(modulus), tuple(residues), tuple(owners))
        with self._lock:
            self.grants = [g for g in self.grants if g[0] != table] + [grant]
        self.control(GrantOwnership(
            tc_id=self.tc_id,
            table=table,
            modulus=int(modulus),
            residues=tuple(residues),
            owners=tuple(owners),
        ))

    def set_sharing_mode(self, mode: str) -> None:
        self.sharing_mode = mode
        self.control(SharingMode(tc_id=self.tc_id, mode=mode))
