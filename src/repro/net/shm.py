"""Shared-memory SPSC rings: the co-located TC↔DC data plane.

A :class:`ShmLink` is a pair of fixed-size single-producer/single-consumer
byte rings over ``multiprocessing.shared_memory`` — one per direction of a
TC↔DC connection.  Frames are the same bytes the pipe carries (the PR 8
fast-path codec included), so the link is a drop-in lane next to the pipe,
not a second protocol: small frames ride the ring as a cross-process
memcpy, oversized ones (and all control traffic before the
:class:`~repro.net.rpc.AttachShm` handshake) stay on the pipe.

**Wakeups are futex-free.**  Each ring's header carries a consumer
``parked`` flag.  A consumer that finds the ring empty spins a bounded
number of times, sets the flag, re-checks once (closing the race with a
concurrent producer), and then parks in a short ``poll`` on the pipe.  A
producer that observes the flag set clears it and sends a one-byte-payload
``DOORBELL`` frame down the pipe — the pipe write *is* the wakeup.  Under
pipelined load the consumer is never parked and no doorbell (no syscall at
all) is ever issued; the short poll timeout is only a backstop against
memory-ordering races, not the wakeup mechanism.

**Crash discipline** (§5.2.1's pinning idea, applied to segments): the
*client* side of a link creates both segments under names derived from a
stable per-link tag (the client's journal path, or socket+identity), so a
respawned client re-creates the *same* names — unlinking any stale segment
a SIGKILL left behind — and the healed server re-attaches from the names
in the next ``AttachShm``.  Liveness never depends on the rings: process
death is detected by pipe EOF exactly as before, and a dead peer's ring is
simply discarded with the connection.

CPython's ``SharedMemory`` registers every segment (even mere attaches)
with the ``resource_tracker``, which would spuriously unlink or warn about
segments whose owner was SIGKILLed; both sides immediately unregister and
manage unlink manually instead.
"""

from __future__ import annotations

import hashlib
import struct
from multiprocessing.shared_memory import SharedMemory
from typing import Optional

from repro.common.errors import ReproError

#: Ring header layout (64 bytes, fields 8-byte spaced so each u32 store is
#: an aligned single-word write — effectively atomic on every platform
#: CPython runs on):
#:   [0]  tail   — total bytes produced, mod 2**32 (producer-owned)
#:   [8]  head   — total bytes consumed, mod 2**32 (consumer-owned)
#:   [16] parked — consumer parked flag (consumer sets, producer clears)
#:   [24] capacity — data bytes after the header (creator-written; read on
#:        attach, because some platforms round segment sizes up to pages)
HEADER_BYTES = 64
_OFF_TAIL = 0
_OFF_HEAD = 8
_OFF_PARKED = 16
_OFF_CAP = 24
_U32 = struct.Struct("<I")
_MASK = 0xFFFFFFFF

#: Smallest ring worth having: below this the pipe wins anyway.
MIN_RING_BYTES = 4096


class ShmError(ReproError):
    """Segment lifecycle or ring protocol failure."""


def _untrack(segment: SharedMemory) -> None:
    """Opt out of the resource tracker's automatic unlink (see module doc)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass  # tracker variance across platforms is cosmetic, never fatal


def _retrack(segment: SharedMemory) -> None:
    """Re-register just before ``unlink()``: CPython's unlink sends its own
    unregister to the tracker daemon, which logs a KeyError traceback if
    the registration was already removed by :func:`_untrack`."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    except Exception:
        pass


def _unlink_segment(segment: SharedMemory) -> None:
    _retrack(segment)
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        _untrack(segment)  # unlink bailed before its own unregister ran


def _unlink_quiet(name: str) -> None:
    try:
        stale = SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return
    _untrack(stale)
    stale.close()
    _unlink_segment(stale)


def ring_capacity(ring_bytes: int) -> int:
    """Usable data capacity for a requested ring size: the largest power
    of two ≤ ``ring_bytes`` (power-of-two capacity keeps the wraparound
    arithmetic exact across the u32 cursor wrap)."""
    if ring_bytes < MIN_RING_BYTES:
        raise ShmError(f"shm ring of {ring_bytes} bytes is below {MIN_RING_BYTES}")
    return 1 << (ring_bytes.bit_length() - 1)


class ShmRing:
    """One direction of a link: an SPSC byte ring of length-prefixed frames.

    Exactly one process calls the producer methods (:meth:`try_send`,
    :meth:`take_parked`) and exactly one the consumer methods
    (:meth:`try_recv`, :meth:`park`/:meth:`unpark`); each side caches its
    own cursor locally and only ever *reads* the other's.
    """

    def __init__(self, segment: SharedMemory) -> None:
        self._seg = segment
        self._buf = segment.buf
        cap = _U32.unpack_from(self._buf, _OFF_CAP)[0]
        if cap == 0 or cap & (cap - 1) or HEADER_BYTES + cap > len(self._buf):
            raise ShmError(f"shm segment {segment.name}: bad capacity {cap}")
        self.capacity = cap
        #: Frames larger than this take the pipe; keeping several frames'
        #: worth of headroom means the ring never single-frame-stalls.
        self.max_frame = cap // 4
        self._tail = _U32.unpack_from(self._buf, _OFF_TAIL)[0]
        self._head = _U32.unpack_from(self._buf, _OFF_HEAD)[0]
        self._closed = False

    @classmethod
    def create(cls, name: str, ring_bytes: int) -> "ShmRing":
        cap = ring_capacity(ring_bytes)
        try:
            seg = SharedMemory(name=name, create=True, size=HEADER_BYTES + cap)
        except FileExistsError:
            # A previous incarnation (SIGKILLed client) left its segment
            # behind; the pinned name makes the stale one ours to replace.
            _unlink_quiet(name)
            seg = SharedMemory(name=name, create=True, size=HEADER_BYTES + cap)
        _untrack(seg)
        seg.buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
        _U32.pack_into(seg.buf, _OFF_CAP, cap)
        return cls(seg)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        try:
            seg = SharedMemory(name=name)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise ShmError(f"cannot attach shm segment {name!r}: {exc}")
        _untrack(seg)
        return cls(seg)

    @property
    def name(self) -> str:
        return self._seg.name

    # -- producer side -------------------------------------------------------

    def try_send(self, frame: bytes) -> bool:
        """Write one length-prefixed frame; False when it does not fit
        (caller falls back to the pipe or retries after the consumer
        drains).  Payload bytes land before the tail advance, so the
        consumer can never observe a partial frame."""
        need = 4 + len(frame)
        cap = self.capacity
        tail = self._tail
        head = _U32.unpack_from(self._buf, _OFF_HEAD)[0]
        if need > cap - ((tail - head) & _MASK):
            return False
        self._write(tail & (cap - 1), _U32.pack(len(frame)))
        self._write((tail + 4) & (cap - 1), frame)
        self._tail = (tail + need) & _MASK
        _U32.pack_into(self._buf, _OFF_TAIL, self._tail)
        return True

    def take_parked(self) -> bool:
        """Read-and-clear the consumer's parked flag.  A True return means
        the producer owes the consumer a doorbell on the pipe."""
        if _U32.unpack_from(self._buf, _OFF_PARKED)[0]:
            _U32.pack_into(self._buf, _OFF_PARKED, 0)
            return True
        return False

    def _write(self, pos: int, data: bytes) -> None:
        cap = self.capacity
        first = cap - pos
        if len(data) <= first:
            self._buf[HEADER_BYTES + pos : HEADER_BYTES + pos + len(data)] = data
        else:
            self._buf[HEADER_BYTES + pos : HEADER_BYTES + cap] = data[:first]
            rest = len(data) - first
            self._buf[HEADER_BYTES : HEADER_BYTES + rest] = data[first:]

    # -- consumer side -------------------------------------------------------

    def readable(self) -> bool:
        return _U32.unpack_from(self._buf, _OFF_TAIL)[0] != self._head

    def try_recv(self) -> Optional[bytes]:
        """Pop one frame, or None when the ring is empty."""
        tail = _U32.unpack_from(self._buf, _OFF_TAIL)[0]
        head = self._head
        if tail == head:
            return None
        cap = self.capacity
        length = _U32.unpack(self._read(head & (cap - 1), 4))[0]
        if 4 + length > cap or ((tail - head) & _MASK) < 4 + length:
            raise ShmError(
                f"shm ring {self.name}: corrupt frame length {length} "
                f"(head={head}, tail={tail})"
            )
        frame = self._read((head + 4) & (cap - 1), length)
        self._head = (head + 4 + length) & _MASK
        _U32.pack_into(self._buf, _OFF_HEAD, self._head)
        return frame

    def park(self) -> None:
        _U32.pack_into(self._buf, _OFF_PARKED, 1)

    def unpark(self) -> None:
        _U32.pack_into(self._buf, _OFF_PARKED, 0)

    def _read(self, pos: int, length: int) -> bytes:
        cap = self.capacity
        first = cap - pos
        if length <= first:
            return bytes(self._buf[HEADER_BYTES + pos : HEADER_BYTES + pos + length])
        return bytes(self._buf[HEADER_BYTES + pos : HEADER_BYTES + cap]) + bytes(
            self._buf[HEADER_BYTES : HEADER_BYTES + length - first]
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._buf.release()
        except Exception:
            pass
        try:
            self._seg.close()
        except (OSError, BufferError):
            pass
        if unlink:
            _unlink_segment(self._seg)


def link_names(tag: str) -> tuple[str, str]:
    """The pinned per-link segment names (c2s, s2c) for a stable tag.

    The tag is the link's durable identity — a journal path, or
    ``socket:client-name`` — so every incarnation of the same client
    derives the same names and the §5.2.1 unlink-stale-then-recreate
    discipline works across SIGKILLs.
    """
    digest = hashlib.sha1(tag.encode("utf-8")).hexdigest()[:20]
    return f"repro_{digest}_c2s", f"repro_{digest}_s2c"


class ShmLink:
    """A client↔server ring pair: client produces ``c2s``, consumes ``s2c``.

    The creating (client) side owns the segments and unlinks them on
    close; the attaching (server) side only detaches — its close must not
    pull the mapping out from under a live client.
    """

    def __init__(self, c2s: ShmRing, s2c: ShmRing, owner: bool) -> None:
        self.c2s = c2s
        self.s2c = s2c
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, tag: str, ring_bytes: int) -> "ShmLink":
        c2s_name, s2c_name = link_names(tag)
        c2s = ShmRing.create(c2s_name, ring_bytes)
        try:
            s2c = ShmRing.create(s2c_name, ring_bytes)
        except Exception:
            c2s.close(unlink=True)
            raise
        return cls(c2s, s2c, owner=True)

    @classmethod
    def attach(cls, c2s_name: str, s2c_name: str) -> "ShmLink":
        c2s = ShmRing.attach(c2s_name)
        try:
            s2c = ShmRing.attach(s2c_name)
        except Exception:
            c2s.close()
            raise
        return cls(c2s, s2c, owner=False)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.c2s.close(unlink=self._owner)
        self.s2c.close(unlink=self._owner)


def unlink_by_tag(tag: str) -> None:
    """Best-effort cleanup of segments whose creator was SIGKILLed and
    will never be respawned (e.g. kernel close after an unhealed TC kill)."""
    for name in link_names(tag):
        _unlink_quiet(name)
