"""Cloud deployments: multiple TCs sharing DCs without 2PC (Section 6)."""

from repro.cloud.deployment import CloudDeployment
from repro.cloud.movie_site import MovieSite
from repro.cloud.partitioning import (
    HashPartitionMap,
    OwnershipRegistry,
    PartitionedTable,
)
from repro.cloud.two_pc import TwoPhaseCommitSystem

__all__ = [
    "CloudDeployment",
    "HashPartitionMap",
    "MovieSite",
    "OwnershipRegistry",
    "PartitionedTable",
    "TwoPhaseCommitSystem",
]
