"""The Figure 2 cloud scenario: an online movie-review site (Section 6.3).

Four logical tables support four workloads:

- ``movies`` (key ``mid``) — general information, partitioned *by movie*
  across the review DCs; supports W1.
- ``reviews`` (key ``(mid, uid)``) — partitioned by movie so all reviews of
  one movie are clustered on one DC; versioned, so the read-only TC gets
  read-committed access without blocking updaters.  Updated by W2.
- ``users`` (key ``uid``) — profile data on the user DC; updated by W3.
- ``myreviews`` (key ``(uid, mid)``) — a clustered per-user copy of each
  review ("effectively ... an index in the physical schema"); updated by
  W2 to support W4.

Users (and workloads W2-W4) are partitioned among updater TCs; every user
transaction is local to one TC — *no distributed transactions* even though
W2 writes two DCs, because a single TC log is the only commit point.  W1
runs on a separate read-only TC with read-committed (versioned) access and
never blocks or is blocked.

The class also instruments machines-touched per workload so experiment
FIG2 can verify "a query needing to access [no] more than two machines".
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.partitioning import (
    HashPartitionMap,
    OwnershipRegistry,
    PartitionedTable,
)
from repro.common.config import ChannelConfig, DcConfig, TcConfig
from repro.common.ops import ReadFlavor
from repro.common.records import KEY_MAX, KEY_MIN, Value
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.tc.transactional_component import TransactionalComponent


class MovieSite:
    """A running deployment of the Figure 2 scenario."""

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        movie_partitions: int = 2,
        updater_tcs: int = 2,
        channel_config: Optional[ChannelConfig] = None,
        dc_config: Optional[DcConfig] = None,
        tc_config: Optional[TcConfig] = None,
    ) -> None:
        self.metrics = metrics or Metrics()
        self._channel_config = channel_config

        # DCs: one per movie partition (reviews+movies), one for user data.
        self.movie_dcs = [
            DataComponent(f"dc{index + 1}", config=dc_config, metrics=self.metrics)
            for index in range(movie_partitions)
        ]
        self.user_dc = DataComponent(
            f"dc{movie_partitions + 1}", config=dc_config, metrics=self.metrics
        )

        # Logical tables and their physical partitions.
        self.movies = PartitionedTable(
            "movies", HashPartitionMap(movie_partitions)
        )
        self.reviews = PartitionedTable(
            "reviews", HashPartitionMap(movie_partitions, extract=lambda key: key[0])
        )
        for index, dc in enumerate(self.movie_dcs):
            dc.create_table(f"movies@{index}", versioned=True)
            dc.create_table(f"reviews@{index}", versioned=True)
        self.user_dc.create_table("users")
        self.user_dc.create_table("myreviews")

        # TCs: updaters own disjoint user partitions; one read-only TC.
        self.updaters = [
            TransactionalComponent(config=tc_config, metrics=self.metrics)
            for _ in range(updater_tcs)
        ]
        self.reader = TransactionalComponent(config=tc_config, metrics=self.metrics)
        for tc in [*self.updaters, self.reader]:
            for dc in [*self.movie_dcs, self.user_dc]:
                tc.attach_dc(dc, channel_config)

        # Ownership: disjoint update rights (Section 6.1).
        self.ownership = OwnershipRegistry()
        count = len(self.updaters)
        for index, tc in enumerate(self.updaters):
            owns_user = (
                lambda uid, i=index, n=count: hash(uid) % n == i
            )
            self.ownership.grant(tc, "users", owns_user)
            self.ownership.grant(
                tc, "myreviews", lambda key, own=owns_user: own(key[0])
            )
            self.ownership.grant(
                tc, "reviews", lambda key, own=owns_user: own(key[1])
            )
            # Movie metadata is administered by the first updater.
            if index == 0:
                self.ownership.grant_all(tc, "movies")
            self.ownership.install(tc)
        self.ownership.install(self.reader)  # read-only: owns nothing

    # -- routing --------------------------------------------------------------

    def owner_of(self, uid: object) -> TransactionalComponent:
        return self.updaters[hash(uid) % len(self.updaters)]

    # -- administration ----------------------------------------------------------

    def add_movie(self, mid: object, info: Value) -> None:
        with self.updaters[0].begin() as txn:
            self.movies.insert(txn, mid, info)

    def register_user(self, uid: object, profile: Value) -> None:
        with self.owner_of(uid).begin() as txn:
            txn.insert("users", uid, profile)

    # -- the four workloads (Section 6.3) ----------------------------------------------

    def reviews_for_movie(self, mid: object) -> list[tuple[object, Value]]:
        """W1: all reviews for a movie — one clustered, non-blocking,
        read-committed scan on the movie's DC by the read-only TC."""
        table = self.reviews.physical_name((mid, None))
        return self.reader.scan_other(
            table,
            low=(mid, KEY_MIN),
            high=(mid, KEY_MAX),
            flavor=ReadFlavor.READ_COMMITTED,
        )

    def post_review(self, uid: object, mid: object, text: Value) -> None:
        """W2: add a review — one TC-local transaction spanning two DCs
        (review clustered by movie, copy clustered by user), no 2PC."""
        tc = self.owner_of(uid)
        with tc.begin() as txn:
            self.reviews.insert(txn, (mid, uid), text)
            txn.insert("myreviews", (uid, mid), text)

    def update_profile(self, uid: object, profile: Value) -> None:
        """W3: update a user's profile — local to the owning TC and DC3."""
        tc = self.owner_of(uid)
        with tc.begin() as txn:
            if txn.read("users", uid) is None:
                txn.insert("users", uid, profile)
            else:
                txn.update("users", uid, profile)

    def my_reviews(self, uid: object) -> list[tuple[object, Value]]:
        """W4: all reviews by one user — one clustered scan of MyReviews."""
        tc = self.owner_of(uid)
        with tc.begin() as txn:
            return txn.scan("myreviews", low=(uid, KEY_MIN), high=(uid, KEY_MAX))

    # -- instrumentation ---------------------------------------------------------------------

    def machines_touched(self, workload, *args: object) -> tuple[object, int]:
        """Run a workload and count how many distinct DCs it contacted."""
        channels = [
            channel
            for tc in [*self.updaters, self.reader]
            for channel in tc.channels().values()
        ]
        before = {id(channel): channel.ops_sent for channel in channels}
        result = workload(*args)
        touched_dcs = {
            channel.dc.name
            for channel in channels
            if channel.ops_sent != before[id(channel)]
        }
        return result, len(touched_dcs)

    def crash_updater(self, index: int) -> int:
        return self.updaters[index].crash()

    def recover_updater(self, index: int) -> dict:
        return self.updaters[index].restart()
