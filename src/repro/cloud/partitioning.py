"""Data partitioning and ownership for multi-TC deployments (Section 6).

Two orthogonal partitionings appear in the paper's Figure 2:

- **Tables partitioned across DCs** for clustering (Movies/Reviews by
  movie onto DC1/DC2; Users/MyReviews by user onto DC3...).  Partitioning
  lives in the *physical schema*: each partition is a separate DC-resident
  table, and :class:`PartitionedTable` routes logical operations to the
  right physical table by key.
- **Update rights partitioned across TCs** (users among TC1/TC2), recorded
  in an :class:`OwnershipRegistry` and enforced through each TC's
  ``ownership_guard`` hook.  Disjoint rights are what guarantee the DC
  never sees conflicting concurrent operations from different TCs.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.common.records import Key, Value
from repro.tc.transactional_component import Transaction, TransactionalComponent


def stable_key_hash(key: object) -> int:
    """A process-independent key hash for cross-process routing.

    The built-in ``hash()`` will not do here: str/bytes hashing is
    seed-randomized per interpreter (PYTHONHASHSEED), so a router in the
    client and an ownership guard in a TC server process would disagree
    about which partition a key lives in.  This hash is deterministic
    across processes and runs, covering the key vocabulary the wire codec
    accepts (ints, strings, bytes, floats, tuples thereof).
    """

    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key if key >= 0 else -key * 2 - 1
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, (bytes, bytearray)):
        return zlib.crc32(bytes(key))
    if isinstance(key, float) and key.is_integer():
        return stable_key_hash(int(key))
    if isinstance(key, tuple):
        combined = 2166136261
        for part in key:
            combined = (combined * 16777619 + stable_key_hash(part)) & 0xFFFFFFFF
        return combined
    return zlib.crc32(repr(key).encode("utf-8"))


class HashPartitionMap:
    """Route a key to one of N partitions by a hash of a key part.

    ``extract`` picks the routing component from composite keys, e.g.
    ``lambda key: key[0]`` routes ``(movie_id, user_id)`` by movie — the
    clustering Figure 2 needs so all reviews of one movie share a DC.

    ``stable=True`` swaps the built-in ``hash()`` for
    :func:`stable_key_hash`, which every process computes identically —
    required whenever the map is shared across process boundaries (the TC
    service router and the TC servers' ownership guards).
    """

    def __init__(
        self,
        partition_count: int,
        extract: Optional[Callable[[Key], object]] = None,
        stable: bool = False,
    ) -> None:
        if partition_count < 1:
            raise ValueError("need at least one partition")
        self.partition_count = partition_count
        self._extract = extract or (lambda key: key)
        self._hash = stable_key_hash if stable else hash

    def partition_of(self, key: Key) -> int:
        return self._hash(self._extract(key)) % self.partition_count


class PartitionedTable:
    """A logical table physically split into per-DC tables.

    The physical table names are ``f"{logical}@{index}"``; the deployment
    creates one on each participating DC and attaches every relevant TC.
    """

    def __init__(
        self, logical_name: str, partition_map: HashPartitionMap
    ) -> None:
        self.logical_name = logical_name
        self.partition_map = partition_map

    def physical_name(self, key: Key) -> str:
        return f"{self.logical_name}@{self.partition_map.partition_of(key)}"

    def all_physical_names(self) -> list[str]:
        return [
            f"{self.logical_name}@{index}"
            for index in range(self.partition_map.partition_count)
        ]

    # -- convenience wrappers over a transaction ----------------------------

    def insert(self, txn: Transaction, key: Key, value: Value) -> None:
        txn.insert(self.physical_name(key), key, value)

    def update(self, txn: Transaction, key: Key, value: Value) -> None:
        txn.update(self.physical_name(key), key, value)

    def delete(self, txn: Transaction, key: Key) -> None:
        txn.delete(self.physical_name(key), key)

    def read(self, txn: Transaction, key: Key) -> Optional[Value]:
        return txn.read(self.physical_name(key), key)

    def scan_partition_of(
        self,
        txn: Transaction,
        routing_key: Key,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        """Scan within the single partition that ``routing_key`` lives in —
        the clustered access pattern Figure 2 is designed around."""
        return txn.scan(self.physical_name(routing_key), low, high, limit)


class OwnershipRegistry:
    """Who may update what: ``(logical_table) -> key predicate`` per TC.

    The registry builds the ``ownership_guard`` closures installed into
    each TC.  Physical partition names (``table@N``) are mapped back to
    their logical table before rules are consulted.
    """

    def __init__(self) -> None:
        #: tc_id -> {logical table -> predicate(key) -> bool}
        self._rules: dict[int, dict[str, Callable[[Key], bool]]] = {}

    def grant(
        self, tc: TransactionalComponent, table: str, predicate: Callable[[Key], bool]
    ) -> None:
        self._rules.setdefault(tc.tc_id, {})[table] = predicate

    def grant_all(self, tc: TransactionalComponent, table: str) -> None:
        self.grant(tc, table, lambda _key: True)

    @staticmethod
    def logical_of(physical_table: str) -> str:
        return physical_table.split("@", 1)[0]

    def allows(self, tc_id: int, physical_table: str, key: Key) -> bool:
        rules = self._rules.get(tc_id)
        if rules is None:
            return False
        predicate = rules.get(self.logical_of(physical_table))
        return predicate is not None and predicate(key)

    def install(self, tc: TransactionalComponent) -> None:
        """Wire this registry into the TC's mutation path."""
        tc.ownership_guard = (
            lambda table, key, _tc_id=tc.tc_id: self.allows(_tc_id, table, key)
        )

    def assert_disjoint(
        self,
        table: str,
        tcs: list[TransactionalComponent],
        sample_keys: list[Key],
    ) -> None:
        """Sanity check (used by tests): no key is updatable by two TCs."""
        for key in sample_keys:
            owners = [
                tc.tc_id for tc in tcs if self.allows(tc.tc_id, table, key)
            ]
            if len(owners) > 1:
                raise ValueError(
                    f"key {key!r} of {table!r} owned by multiple TCs: {owners}"
                )
