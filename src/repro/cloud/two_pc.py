"""A textbook blocking two-phase commit — the baseline the paper avoids.

Section 6.2.2: "An important characteristic of this approach is that there
is no classic (blocking) two phase commit protocol in this picture."  To
quantify what is avoided, this module implements the classic protocol a
conventional share-nothing deployment would need for Figure 2's W2 (a
review insert spanning two machines): a coordinator, participants with
prepare/commit logging, votes, acks, and the blocking window in which a
participant that voted YES can neither commit nor abort until it hears the
decision.

Experiment FIG2 counts this protocol's messages, log forces and simulated
round trips against the unbundled kernel's single-log commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.metrics import Metrics


class ParticipantState(enum.Enum):
    IDLE = "idle"
    PREPARED = "prepared"  # voted YES: blocked until the decision arrives
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _LogEntry:
    kind: str
    txn_id: int


class Participant:
    """One resource manager with its own (simulated) forced log."""

    def __init__(self, name: str, metrics: Metrics) -> None:
        self.name = name
        self.metrics = metrics
        self.log: list[_LogEntry] = []
        self.state: dict[int, ParticipantState] = {}
        self.crashed = False

    def _force(self, entry: _LogEntry) -> None:
        self.log.append(entry)
        self.metrics.incr("twopc.log_forces")

    def prepare(self, txn_id: int, vote_yes: bool = True) -> bool:
        if self.crashed:
            raise ConnectionError(f"participant {self.name} is down")
        if not vote_yes:
            self.state[txn_id] = ParticipantState.ABORTED
            self._force(_LogEntry("abort", txn_id))
            return False
        self._force(_LogEntry("prepare", txn_id))
        self.state[txn_id] = ParticipantState.PREPARED
        return True

    def decide(self, txn_id: int, commit: bool) -> None:
        if self.crashed:
            raise ConnectionError(f"participant {self.name} is down")
        self._force(_LogEntry("commit" if commit else "abort", txn_id))
        self.state[txn_id] = (
            ParticipantState.COMMITTED if commit else ParticipantState.ABORTED
        )

    def is_blocked(self, txn_id: int) -> bool:
        """A prepared participant is in the blocking window (Section 6.2.2's
        complaint): it holds locks and can decide nothing unilaterally."""
        return self.state.get(txn_id) is ParticipantState.PREPARED


@dataclass
class CommitOutcome:
    committed: bool
    messages: int
    log_forces: int
    round_trips: int
    sim_latency_ms: float
    blocked_participants: int = 0


class TwoPhaseCommitSystem:
    """Coordinator plus participants, with a message/latency cost model."""

    def __init__(
        self,
        participant_names: list[str],
        latency_ms: float = 0.0,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.metrics = metrics or Metrics()
        self.participants = {
            name: Participant(name, self.metrics) for name in participant_names
        }
        self.latency_ms = latency_ms
        self.coordinator_log: list[_LogEntry] = []
        self._txn_ids = 0

    def _msg(self, count: int = 1) -> None:
        self.metrics.incr("twopc.messages", count)

    def commit_transaction(
        self,
        involved: Optional[list[str]] = None,
        votes: Optional[dict[str, bool]] = None,
    ) -> CommitOutcome:
        """Run the full protocol; returns its measured cost.

        ``votes`` lets tests force a NO vote (global abort) or omit a
        participant to simulate a failure during prepare.
        """
        self._txn_ids += 1
        txn_id = self._txn_ids
        names = involved if involved is not None else list(self.participants)
        votes = votes or {}
        forces_before = self.metrics.get("twopc.log_forces")
        messages_before = self.metrics.get("twopc.messages")

        # Phase 1: prepare requests out, votes back (1 RT).
        all_yes = True
        for name in names:
            self._msg()  # prepare ->
            try:
                vote = self.participants[name].prepare(
                    txn_id, votes.get(name, True)
                )
            except ConnectionError:
                vote = False
            self._msg()  # <- vote
            if not vote:
                all_yes = False

        # Coordinator decision is a forced log write (the commit point).
        self.coordinator_log.append(
            _LogEntry("commit" if all_yes else "abort", txn_id)
        )
        self.metrics.incr("twopc.log_forces")

        # Phase 2: decisions out, acks back (1 RT).
        blocked = 0
        for name in names:
            participant = self.participants[name]
            if participant.is_blocked(txn_id):
                blocked += 1
            self._msg()  # decision ->
            try:
                participant.decide(txn_id, all_yes)
                self._msg()  # <- ack
            except ConnectionError:
                pass  # decision is retried forever in a real system

        round_trips = 2
        outcome = CommitOutcome(
            committed=all_yes,
            messages=self.metrics.get("twopc.messages") - messages_before,
            log_forces=self.metrics.get("twopc.log_forces") - forces_before,
            round_trips=round_trips,
            sim_latency_ms=round_trips * 2 * self.latency_ms,
            blocked_participants=blocked,
        )
        self.metrics.incr("twopc.commits" if all_yes else "twopc.aborts")
        return outcome

    def crash_participant(self, name: str) -> None:
        self.participants[name].crashed = True

    def blocked_transactions(self) -> int:
        """Transactions stuck in the in-doubt window across participants."""
        return sum(
            1
            for participant in self.participants.values()
            for state in participant.state.values()
            if state is ParticipantState.PREPARED
        )
