"""TC-service routing: a thin tier in front of N TC server processes.

The paper's deployment sketch (Sections 4, 6) has applications talk to
*a* transaction service, not *the* transaction component: update rights
are partitioned across TCs, all of which share the same DC pool.  The
:class:`TcServiceRouter` is the thin routing layer that makes the tier
look like one service — it hashes a transaction's routing key with the
process-independent :func:`~repro.cloud.partitioning.stable_key_hash`
(the same function every TC server's ownership guard uses, so router and
guards always agree) and opens the transaction on the owning TC.

A misrouted write — stale router, wrong routing key — is *detected*, not
trusted: the owning guard inside the TC server bounces it with a
:class:`~repro.common.errors.TcRedirect` naming the true owner, and
:meth:`TcServiceRouter.execute` retries there once.  Routing is an
optimization; ownership is the invariant.

:class:`TcServiceDeployment` is the operator: it spawns the DC pool (each
DC process additionally listening on a Unix socket), spawns the TC server
processes (each holding its own socket connections to every DC), installs
disjoint ownership grants, and wires DC heal events to the TC processes
so the §5.2.1 redo prompt crosses both process boundaries.  Everything a
:class:`~repro.sim.supervisor.Supervisor` needs (``tcs`` / ``dcs`` maps
with ``crashed`` / ``on_crash`` / heal surfaces) is exposed, so the
standard heal policy runs unchanged over a tier of OS processes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Callable, Optional

from repro.common.config import DcConfig, TcConfig
from repro.common.errors import ReproError, TcRedirect
from repro.cloud.partitioning import HashPartitionMap
from repro.net.process import RemoteDc
from repro.net.tcclient import RemoteTc, RemoteTransaction


class TcServiceRouter:
    """Route transactions to the owning TC by stable key hash."""

    def __init__(
        self,
        tcs: list[RemoteTc],
        partitions: Optional[int] = None,
        extract: Optional[Callable] = None,
    ) -> None:
        if not tcs:
            raise ReproError("router needs at least one TC")
        self.tcs = list(tcs)
        self.by_name = {tc.name: tc for tc in self.tcs}
        self.partitions = partitions or len(self.tcs)
        self._map = HashPartitionMap(self.partitions, extract, stable=True)
        self.redirects_followed = 0

    def partition_of(self, key) -> int:
        return self._map.partition_of(key)

    def owner_of(self, key) -> RemoteTc:
        return self.tcs[self._map.partition_of(key) % len(self.tcs)]

    def begin(self, routing_key) -> RemoteTransaction:
        """Open a transaction on the TC owning ``routing_key``'s partition."""
        return self.owner_of(routing_key).begin()

    def execute(self, routing_key, fn: Callable[[RemoteTc], object]) -> object:
        """Run ``fn(tc)`` on the routed TC, following one redirect.

        The redirect retry is the misroute contract: the guard inside the
        server is authoritative, the router is a cache.  More than one
        bounce means the grants themselves disagree — that is a bug, not
        a race, so it propagates.
        """
        try:
            return fn(self.owner_of(routing_key))
        except TcRedirect as redirect:
            owner = self.by_name.get(redirect.owner)
            if owner is None:
                raise
            self.redirects_followed += 1
            return fn(owner)

    def read_other(self, table: str, key, **kwargs):
        """Read via the owning TC (any TC could serve it — Section 6's
        read-committed sharing — but the owner sees its own writes with no
        cross-TC staleness)."""
        return self.owner_of(key).read_other(table, key, **kwargs)


class TcServiceDeployment:
    """N TC server processes sharing a DC-process pool, plus the router.

    The full out-of-process topology::

        client ──► TcServiceRouter ──► tc1..tcN (OS processes)
                                          │  Unix sockets, §4.2.1 protocol
                                          ▼
                                       dc1..dcM (OS processes, shared pool)

    Ownership: table partitions (``stable_key_hash(key) % partitions``)
    are dealt round-robin to TCs; grants are installed into each server
    and remembered client-side so a §5.3.2 respawn re-installs the exact
    map the router still routes by.
    """

    def __init__(
        self,
        tc_count: int = 2,
        dc_count: int = 2,
        partitions: Optional[int] = None,
        data_dir: str = "",
        tc_config: Optional[TcConfig] = None,
        dc_config: Optional[DcConfig] = None,
        sharing_mode: str = "",
        start_method: str = "",
        request_timeout_s: float = 30.0,
        listen_host: str = "",
        fast_codec: bool = True,
    ) -> None:
        if tc_count < 1 or dc_count < 1:
            raise ReproError("deployment needs at least one TC and one DC")
        self.partitions = partitions or max(tc_count * 4, 4)
        self._owns_dir = not data_dir
        self.data_dir = data_dir or tempfile.mkdtemp(prefix="repro-tcservice-")
        self.dcs: dict[str, RemoteDc] = {}
        self.tcs: dict[str, RemoteTc] = {}
        self._closed = False
        try:
            for index in range(dc_count):
                name = f"dc{index + 1}"
                self.dcs[name] = RemoteDc(
                    name,
                    config=dc_config,
                    journal_path=os.path.join(self.data_dir, f"{name}.journal"),
                    start_method=start_method,
                    request_timeout_s=request_timeout_s,
                    # TCP data plane when listen_host is set (ephemeral
                    # port, pinned from the Hello so heals re-bind it);
                    # Unix sockets in the data dir otherwise.
                    listen_path=(
                        f"tcp://{listen_host}:0"
                        if listen_host
                        else os.path.join(self.data_dir, f"{name}.sock")
                    ),
                    fast_codec=fast_codec,
                )
            dc_socks = {dc.name: dc.listen_path for dc in self.dcs.values()}
            for index in range(tc_count):
                name = f"tc{index + 1}"
                self.tcs[name] = RemoteTc(
                    name,
                    tc_id=index + 1,
                    journal_path=os.path.join(self.data_dir, f"{name}.journal"),
                    dcs=dc_socks,
                    config=tc_config,
                    sharing_mode=sharing_mode,
                    start_method=start_method,
                    request_timeout_s=request_timeout_s,
                    fast_codec=fast_codec,
                )
            for dc in self.dcs.values():
                dc.restart_listeners.append(self._forward_dc_restart)
        except BaseException:
            self.close()
            raise
        self.router = TcServiceRouter(list(self.tcs.values()), self.partitions)

    # -- §5.2.1 across two process boundaries --------------------------------

    def _forward_dc_restart(self, dc: RemoteDc) -> None:
        """Tell every live TC process that ``dc`` was healed.

        A *crashed* TC is skipped on purpose: its own §5.3.2 restart
        builds fresh DC connections and re-drives redo, so the prompt
        would be redundant.  A live TC that fails mid-notify raises
        ``CrashedError`` out of here, which keeps the supervisor's prompt
        queued for the next round — re-notifying an already-notified TC is
        absorbed by abLSN idempotence.
        """
        for tc in self.tcs.values():
            if not tc.crashed:
                tc.notify_dc_restart(dc.name)

    # -- schema & ownership ---------------------------------------------------

    def create_table(
        self,
        name: str,
        dc_name: str = "",
        kind: str = "btree",
        versioned: bool = True,
        bucket_count: int = 16,
    ) -> None:
        """Create a table on one DC, refresh every TC's routes, and deal
        its partitions out as disjoint update rights.

        ``versioned=True`` by default: the TC tier's cross-TC reads use
        Section 6.3's read-committed flavor, which needs version chains.
        """
        dc = self.dcs[dc_name] if dc_name else self._pick_dc(name)
        dc.create_table(name, kind=kind, versioned=versioned, bucket_count=bucket_count)
        tc_names = list(self.tcs)
        owners = tuple(
            tc_names[p % len(tc_names)] for p in range(self.partitions)
        )
        for index, tc in enumerate(self.tcs.values()):
            tc.refresh_routes(dc.name)
            residues = tuple(
                p for p in range(self.partitions) if p % len(tc_names) == index
            )
            tc.grant(name, self.partitions, residues, owners)

    def _pick_dc(self, table: str) -> RemoteDc:
        from repro.cloud.partitioning import stable_key_hash

        names = sorted(self.dcs)
        return self.dcs[names[stable_key_hash(table) % len(names)]]

    def set_sharing_mode(self, mode: str) -> None:
        for tc in self.tcs.values():
            tc.set_sharing_mode(mode)

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "tcs": {
                name: (tc.stats() if not tc.crashed else {"crashed": True})
                for name, tc in self.tcs.items()
            },
            "dcs": {
                name: (dc.stats() if not dc.crashed else {"crashed": True})
                for name, dc in self.dcs.items()
            },
            "partitions": self.partitions,
            "redirects_followed": self.router.redirects_followed,
        }

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # TCs first: they hold client connections into the DC pool, and a
        # graceful TC shutdown must not find its DCs already gone.
        for tc in self.tcs.values():
            try:
                tc.shutdown()
            except ReproError:
                pass
        for dc in self.dcs.values():
            try:
                dc.shutdown()
            except ReproError:
                pass
        if self._owns_dir:
            shutil.rmtree(self.data_dir, ignore_errors=True)

    def __enter__(self) -> "TcServiceDeployment":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
