"""A declarative builder for multi-TC / multi-DC deployments (Section 6).

``MovieSite`` hard-codes Figure 2; :class:`CloudDeployment` generalizes it
so applications (and experiments) can declare an arbitrary topology:

    deployment = CloudDeployment()
    deployment.add_dc("dc-east", latency_ms=1.0)
    deployment.add_dc("dc-west", latency_ms=30.0)
    deployment.add_tc("orders-tc")
    deployment.add_tc("analytics-tc", read_only=True)
    deployment.create_table("orders", dc="dc-east", versioned=True)
    deployment.grant("orders-tc", "orders", lambda key: True)
    deployment.build()

After ``build()`` every TC is attached to every DC it can reach, ownership
guards are installed, and the deployment exposes lookup helpers plus
aggregate instrumentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cloud.partitioning import HashPartitionMap, OwnershipRegistry, PartitionedTable
from repro.common.config import ChannelConfig, DcConfig, TcConfig
from repro.common.errors import ReproError
from repro.common.records import Key
from repro.dc.data_component import DataComponent
from repro.sim.metrics import Metrics
from repro.tc.transactional_component import TransactionalComponent

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.faults import FaultInjector


class CloudDeployment:
    """Declare DCs, TCs, tables and ownership; then :meth:`build`."""

    def __init__(
        self,
        metrics: Optional[Metrics] = None,
        dc_config: Optional[DcConfig] = None,
        tc_config: Optional[TcConfig] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.metrics = metrics or Metrics()
        self._dc_config = dc_config
        self._tc_config = tc_config
        self.faults = faults
        self.dcs: dict[str, DataComponent] = {}
        self.tcs: dict[str, TransactionalComponent] = {}
        self._tc_read_only: dict[str, bool] = {}
        self._channel_configs: dict[str, ChannelConfig] = {}
        self.ownership = OwnershipRegistry()
        self._grants: list[tuple[str, str, Callable[[Key], bool]]] = []
        self._partitioned: dict[str, PartitionedTable] = {}
        self._built = False

    # -- declaration ------------------------------------------------------------

    def add_dc(
        self,
        name: str,
        latency_ms: float = 0.0,
        config: Optional[DcConfig] = None,
        seed: int = 0,
    ) -> DataComponent:
        if name in self.dcs:
            raise ReproError(f"DC {name!r} already declared")
        dc = DataComponent(
            name,
            config=config or self._dc_config,
            metrics=self.metrics,
            faults=self.faults,
        )
        self.dcs[name] = dc
        self._channel_configs[name] = ChannelConfig(latency_ms=latency_ms, seed=seed)
        return dc

    def add_remote_dc(
        self,
        name: str,
        journal_path: str,
        config: Optional[DcConfig] = None,
        start_method: str = "",
        request_timeout_s: float = 30.0,
        shm_ring_bytes: int = 0,
        shm_spin: int = 0,
        shm_park_ms: float = 0.0,
    ):
        """A DC running as its own OS process (docs/architecture.md §10).

        Mixes freely with in-process DCs declared via :meth:`add_dc`:
        :meth:`build` picks the channel implementation per endpoint.  The
        deployment-wide fault injector cannot reach a remote DC — kill its
        process instead.  ``shm_ring_bytes > 0`` attaches a shared-memory
        ring pair to this link (``transport="shm"`` semantics, §18).
        """
        if name in self.dcs:
            raise ReproError(f"DC {name!r} already declared")
        if self.faults is not None:
            raise ReproError(
                "fault injection hooks are local-only; remote DCs exercise "
                "failures by killing the process (docs/architecture.md §10)"
            )
        from repro.net.process import RemoteDc

        dc = RemoteDc(
            name,
            config=config or self._dc_config,
            metrics=self.metrics,
            journal_path=journal_path,
            start_method=start_method,
            request_timeout_s=request_timeout_s,
            shm_ring_bytes=shm_ring_bytes,
            shm_spin=shm_spin,
            shm_park_ms=shm_park_ms,
        )
        self.dcs[name] = dc
        self._channel_configs[name] = ChannelConfig(
            transport="shm" if shm_ring_bytes else "process",
            request_timeout_s=request_timeout_s,
            shm_ring_bytes=shm_ring_bytes or (1 << 20),
            shm_spin=shm_spin or 200,
            shm_park_ms=shm_park_ms or 5.0,
        )
        return dc

    def add_tc(
        self, name: str, read_only: bool = False, config: Optional[TcConfig] = None
    ) -> TransactionalComponent:
        if name in self.tcs:
            raise ReproError(f"TC {name!r} already declared")
        tc = TransactionalComponent(
            config=config or self._tc_config, metrics=self.metrics, faults=self.faults
        )
        self.tcs[name] = tc
        self._tc_read_only[name] = read_only
        return tc

    def create_table(
        self,
        logical_name: str,
        dc: Optional[str] = None,
        partitions: Optional[list[str]] = None,
        versioned: bool = False,
        kind: str = "btree",
        route_by: Optional[Callable[[Key], object]] = None,
    ) -> Optional[PartitionedTable]:
        """A table on one DC, or hash-partitioned across several.

        With ``partitions``, physical tables ``name@i`` are created on the
        listed DCs and a :class:`PartitionedTable` router is returned;
        ``route_by`` extracts the routing component from composite keys.
        """
        if partitions is None:
            target = dc if dc is not None else next(iter(self.dcs))
            self.dcs[target].create_table(
                logical_name, kind=kind, versioned=versioned
            )
            return None
        table = PartitionedTable(
            logical_name, HashPartitionMap(len(partitions), extract=route_by)
        )
        for index, dc_name in enumerate(partitions):
            self.dcs[dc_name].create_table(
                f"{logical_name}@{index}", kind=kind, versioned=versioned
            )
        self._partitioned[logical_name] = table
        return table

    def grant(
        self, tc_name: str, logical_table: str, predicate: Callable[[Key], bool]
    ) -> None:
        self._grants.append((tc_name, logical_table, predicate))

    # -- assembly ------------------------------------------------------------------

    def build(self) -> "CloudDeployment":
        if self._built:
            raise ReproError("deployment already built")
        for tc_name, tc in self.tcs.items():
            for dc_name, dc in self.dcs.items():
                tc.attach_dc(dc, self._channel_configs[dc_name])
        for tc_name, table, predicate in self._grants:
            self.ownership.grant(self.tcs[tc_name], table, predicate)
        for tc_name, tc in self.tcs.items():
            # read-only TCs get no grants; the guard rejects all updates
            self.ownership.install(tc)
        self._built = True
        return self

    # -- lookup ------------------------------------------------------------------------

    def tc(self, name: str) -> TransactionalComponent:
        return self.tcs[name]

    def dc(self, name: str) -> DataComponent:
        return self.dcs[name]

    def partitioned(self, logical_name: str) -> PartitionedTable:
        return self._partitioned[logical_name]

    # -- instrumentation ------------------------------------------------------------------

    def total_messages(self) -> int:
        return self.metrics.get("channel.requests")

    def machines_touched(self, workload: Callable[[], object]) -> tuple[object, int]:
        channels = [
            channel for tc in self.tcs.values() for channel in tc.channels().values()
        ]
        before = {id(channel): channel.ops_sent for channel in channels}
        result = workload()
        touched = {
            channel.dc.name
            for channel in channels
            if channel.ops_sent != before[id(channel)]
        }
        return result, len(touched)

    def crash_everything(self) -> None:
        for tc in self.tcs.values():
            tc.crash()
        for dc in self.dcs.values():
            dc.crash()

    def recover_everything(self) -> None:
        for dc in self.dcs.values():
            dc.recover(notify_tcs=False)
        for tc in self.tcs.values():
            tc.restart()

    def close(self) -> None:
        """Shut down any remote DC server processes (no-op otherwise)."""
        for dc in self.dcs.values():
            shutdown = getattr(dc, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "CloudDeployment":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
