"""Fixed-bucket log-scale histograms (the measurement substrate).

``Distribution`` in :mod:`repro.sim.metrics` records count/total/min/max —
enough for throughput counters, useless for tail latency.  A
:class:`Histogram` adds percentile estimation with bounded memory and
bounded relative error: values land in geometric buckets whose boundaries
are fixed at ``2**(i / SUBBUCKETS)``, so a bucket's width is a constant
*ratio* (not a constant difference) and one sparse dict covers twelve
orders of magnitude.  With 8 sub-buckets per octave the boundary ratio is
``2**(1/8) ~ 1.09``; reporting the geometric midpoint bounds the relative
error of any percentile estimate at ~4.4%.

The same type backs latency spans (seconds), log-record sizes (bytes) and
batch lengths (counts) — the unit is the caller's business.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: Geometric sub-buckets per octave (power of two).  Fixed: every histogram
#: in one process uses the same boundaries, so merging is index-wise.
SUBBUCKETS = 8

_LOG2_SCALE = SUBBUCKETS  # bucket index = floor(log2(value) * SUBBUCKETS)


class Histogram:
    """Sparse fixed-boundary log-scale histogram with percentile queries."""

    __slots__ = ("_counts", "_zero", "count")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        #: Values <= 0 get a dedicated bucket (durations of 0.0 happen when
        #: the clock granularity exceeds the measured interval).
        self._zero = 0
        self.count = 0

    # -- recording ---------------------------------------------------------

    def observe(self, value: float, times: int = 1) -> None:
        self.count += times
        if value <= 0.0:
            self._zero += times
            return
        index = math.floor(math.log2(value) * _LOG2_SCALE)
        self._counts[index] = self._counts.get(index, 0) + times

    # -- querying ----------------------------------------------------------

    @staticmethod
    def bucket_bounds(index: int) -> tuple[float, float]:
        """The half-open value interval ``[low, high)`` of bucket ``index``."""
        low = 2.0 ** (index / _LOG2_SCALE)
        high = 2.0 ** ((index + 1) / _LOG2_SCALE)
        return low, high

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``): the geometric
        midpoint of the bucket holding the rank-``ceil(q * count)`` value."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = self._zero
        if cumulative >= target:
            return 0.0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                low, high = self.bucket_bounds(index)
                return math.sqrt(low * high)
        return 0.0  # unreachable: cumulative == count after the loop

    def summary(self) -> dict[str, float]:
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    # -- merging -----------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (bucket boundaries are global)."""
        self.count += other.count
        self._zero += other._zero
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        return self

    def snapshot(self) -> "Histogram":
        copy = Histogram()
        copy._counts = dict(self._counts)
        copy._zero = self._zero
        copy.count = self.count
        return copy

    # -- introspection -----------------------------------------------------

    def nonempty_buckets(self) -> list[tuple[float, float, int]]:
        """``(low, high, count)`` rows for every populated bucket, sorted."""
        rows = []
        if self._zero:
            rows.append((0.0, 0.0, self._zero))
        for index in sorted(self._counts):
            low, high = self.bucket_bounds(index)
            rows.append((low, high, self._counts[index]))
        return rows

    def __repr__(self) -> str:
        if not self.count:
            return "Histogram(empty)"
        s = self.summary()
        return (
            f"Histogram(n={self.count}, p50={s['p50']:.3g}, "
            f"p95={s['p95']:.3g}, p99={s['p99']:.3g})"
        )


def merge_all(histograms: Iterable[Optional[Histogram]]) -> Histogram:
    """A fresh histogram holding the union of every non-None input."""
    merged = Histogram()
    for histogram in histograms:
        if histogram is not None:
            merged.merge(histogram)
    return merged
