"""End-to-end tracing & profiling for the unbundled kernel.

- :mod:`repro.obs.tracing` — causal spans piggybacking on the request ids
  the interaction contracts already require; :data:`NULL_TRACER` is the
  zero-overhead default every component holds.
- :mod:`repro.obs.hist` — fixed-bucket log-scale histograms with
  p50/p95/p99 (also backs :class:`repro.sim.metrics.Distribution`).
- :mod:`repro.obs.export` — Chrome trace-event JSON (chrome://tracing,
  Perfetto) and plain-text per-phase latency breakdowns.
"""

from repro.obs.hist import Histogram
from repro.obs.export import (
    chrome_trace,
    latency_breakdown,
    percentile_block,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Histogram",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "latency_breakdown",
    "percentile_block",
    "validate_chrome_trace",
    "write_chrome_trace",
]
