"""Causal tracing across the TC/DC boundary.

The interaction contracts already force every TC -> DC operation to carry a
*unique request id* (the TC-log LSN): it is what makes resends idempotent,
redo exactly-once and causality checkable.  A unique id per operation *is*
a distributed-tracing context, so this module makes the latent structure
visible: one :class:`Span` tree per transaction, linking lock waits, log
forces, channel sends (resends become sibling retry spans), DC-side
execution, system-transaction splits and buffer/disk I/O.

Design points:

- **Thread-local activation.**  Components never pass span handles around;
  a span entered via ``tracer.span(...)`` (or re-entered via
  ``tracer.activate(root)``) becomes the implicit parent for anything the
  same thread starts beneath it — which, in an in-process kernel whose
  channel delivers synchronously, is exactly the causal order.
- **Request ids double as trace context.**  ``bind_request(op_id, span)``
  publishes the sending span under its operation id; a DC executing with
  no active span (a redo replay after its restart, say) recovers the
  original transaction's context from the id alone — the piggybacking the
  paper's contracts made free.
- **Zero overhead when off.**  Every component holds a tracer reference
  defaulting to the singleton :data:`NULL_TRACER`, whose ``span``/
  ``activate`` return one shared no-op context manager: tracing disabled
  costs one attribute lookup and one method call per site, no allocation.

Spans always close: ``tracer.span(...)`` finishes its span in a
``finally`` and tags the exception type on the way out, so crashed
operations leave error-tagged spans, never dangling ones.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterator, Optional

from repro.obs.hist import Histogram


def _now_us() -> float:
    return time.perf_counter_ns() / 1_000.0


class Span:
    """One timed, tagged node in a trace tree."""

    __slots__ = (
        "name",
        "component",
        "trace_id",
        "span_id",
        "parent_id",
        "start_us",
        "duration_us",
        "tags",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        component: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        tags: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_us = _now_us()
        self.duration_us: Optional[float] = None  # None = still open
        self.tags = tags

    def set_tag(self, key: str, value: object) -> None:
        self.tags[key] = value

    @property
    def finished(self) -> bool:
        return self.duration_us is not None

    def finish(self, **tags: object) -> None:
        """Close the span (idempotent) and hand it to the tracer."""
        if self.duration_us is not None:
            return
        self.duration_us = _now_us() - self.start_us
        if tags:
            self.tags.update(tags)
        self._tracer._record(self)

    def __repr__(self) -> str:
        state = f"{self.duration_us:.1f}us" if self.finished else "open"
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {state})"
        )


class _SpanScope:
    """Context manager pushing a span on the thread stack; finishes on exit."""

    __slots__ = ("_tracer", "_span", "_finish")

    def __init__(self, tracer: "Tracer", span: Span, finish: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._finish = finish

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        else:  # pragma: no cover - defensive: unbalanced enter/exit
            try:
                stack.remove(self._span)
            except ValueError:
                pass
        if self._finish:
            if exc_type is not None:
                self._span.tags.setdefault("error", exc_type.__name__)
            self._span.finish()
        return False


class Tracer:
    """Collects finished spans; grouping and export live in
    :mod:`repro.obs.export`.

    Thread-safe: the finished-span list and the request registry are
    guarded; the activation stack is thread-local by construction.
    """

    enabled = True

    def __init__(self, max_spans: int = 1_000_000) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._local = threading.local()
        #: op_id -> (trace_id, span_id) of the span that sent the request.
        self._requests: dict[object, tuple[int, int]] = {}
        self.max_spans = max_spans
        self.dropped = 0

    # -- span creation -----------------------------------------------------

    def start_trace(self, name: str, component: str = "tc", **tags: object) -> Span:
        """A new root span (a fresh trace).  Not activated and not finished
        automatically — the caller owns its lifetime (transaction roots
        span many calls)."""
        span_id = next(self._ids)
        return Span(self, name, component, span_id, span_id, None, tags)

    def span(
        self,
        name: str,
        component: str = "",
        parent: Optional[Span] = None,
        request_id: object = None,
        **tags: object,
    ) -> _SpanScope:
        """A child span as a context manager: parented to ``parent``, else
        to the thread's active span, else to the trace registered under
        ``request_id``, else a fresh root.  Finished (and error-tagged) on
        exit, even when the body raises."""
        if parent is None:
            parent = self.current()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            context = self._requests.get(request_id) if request_id is not None else None
            if context is not None:
                trace_id, parent_id = context
                tags.setdefault("via_request_id", True)
            else:
                trace_id, parent_id = 0, None  # patched to own id below
        span_id = next(self._ids)
        if parent_id is None and trace_id == 0:
            trace_id = span_id
        return _SpanScope(
            self, Span(self, name, component, trace_id, span_id, parent_id, tags), True
        )

    def activate(self, span: Optional[Span]) -> "_SpanScope | _NullSpan":
        """Re-enter an existing span (a transaction root) as the thread's
        current parent without finishing it on exit."""
        if span is None or not isinstance(span, Span):
            return NULL_SPAN
        return _SpanScope(self, span, False)

    # -- request-id piggybacking ------------------------------------------

    def bind_request(self, op_id: object, span: Optional[Span] = None) -> None:
        """Publish the trace context reachable through ``op_id``."""
        if span is None:
            span = self.current()
        if span is None or not isinstance(span, Span):
            return
        with self._lock:
            self._requests[op_id] = (span.trace_id, span.span_id)

    def request_context(self, op_id: object) -> Optional[tuple[int, int]]:
        return self._requests.get(op_id)

    def release_request(self, op_id: object) -> None:
        """Forget a completed operation's context (bounds the registry)."""
        with self._lock:
            self._requests.pop(op_id, None)

    # -- activation stack --------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- collection --------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id, each group in start order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.finished_spans():
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: s.start_us)
        return grouped

    def span_tree(self, trace_id: int) -> dict[Optional[int], list[Span]]:
        """``parent_id -> children`` for one trace (roots under ``None``)."""
        tree: dict[Optional[int], list[Span]] = {}
        for span in self.traces().get(trace_id, []):
            tree.setdefault(span.parent_id, []).append(span)
        return tree

    def descendant_names(self, root: Span) -> set[str]:
        """Names of every finished span in ``root``'s subtree (root excluded)."""
        tree = self.span_tree(root.trace_id)
        names: set[str] = set()
        frontier = [root.span_id]
        while frontier:
            parent = frontier.pop()
            for child in tree.get(parent, []):
                names.add(child.name)
                frontier.append(child.span_id)
        return names

    def duration_histograms(self) -> dict[str, Histogram]:
        """Per-span-name latency histograms (microseconds)."""
        result: dict[str, Histogram] = {}
        for span in self.finished_spans():
            result.setdefault(span.name, Histogram()).observe(span.duration_us or 0.0)
        return result

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._requests.clear()
            self.dropped = 0


class _NullSpan:
    """Shared no-op standing in for Span, its scope, and the tracer's
    context managers.  Every method is a no-op; every use is reentrant."""

    __slots__ = ()

    name = ""
    component = ""
    trace_id = 0
    span_id = 0
    parent_id = None
    start_us = 0.0
    duration_us = 0.0
    tags: dict = {}
    finished = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: object) -> None:
        pass

    def finish(self, **tags: object) -> None:
        pass

    def __repr__(self) -> str:
        return "<NULL_SPAN>"


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: same surface as :class:`Tracer`, zero work.

    All components default to the shared :data:`NULL_TRACER`, so every
    instrumentation site is unconditional — no ``if tracing:`` branches —
    yet a disabled run allocates nothing per operation.
    """

    enabled = False
    dropped = 0
    max_spans = 0

    def start_trace(self, name: str, component: str = "", **tags: object) -> _NullSpan:
        return NULL_SPAN

    def span(self, name: str, component: str = "", **tags: object) -> _NullSpan:
        return NULL_SPAN

    def activate(self, span: object) -> _NullSpan:
        return NULL_SPAN

    def bind_request(self, op_id: object, span: object = None) -> None:
        pass

    def request_context(self, op_id: object) -> None:
        return None

    def release_request(self, op_id: object) -> None:
        pass

    def current(self) -> None:
        return None

    def finished_spans(self) -> list:
        return []

    def traces(self) -> dict:
        return {}

    def duration_histograms(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def spans_in_order(spans: list[Span]) -> Iterator[Span]:
    """Start-time iteration helper shared by exporters and tests."""
    return iter(sorted(spans, key=lambda s: (s.trace_id, s.start_us)))
