"""Trace export: Chrome trace-event JSON and plain-text latency breakdowns.

The JSON format is the Trace Event Format consumed by ``chrome://tracing``
and Perfetto (https://ui.perfetto.dev — drag the file in).  Each finished
span becomes one complete ("ph": "X") event; components map to processes
(so the TC, each DC, the channel and the disk get their own swim lanes)
and traces map to threads within them, which renders one transaction's
hops across components as aligned rows.

The text breakdown answers the other 90% of questions without a browser:
per-phase (span name) count and p50/p95/p99 duration, sorted by total
time, straight from :meth:`Tracer.duration_histograms`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.obs.hist import Histogram
from repro.obs.tracing import Span, Tracer


def chrome_trace(tracer_or_spans: Union[Tracer, list[Span]]) -> dict:
    """The trace as a Trace Event Format document (a plain dict)."""
    if isinstance(tracer_or_spans, Tracer):
        spans = tracer_or_spans.finished_spans()
    else:
        spans = list(tracer_or_spans)
    events: list[dict] = []
    pids: dict[str, int] = {}
    for span in spans:
        component = span.component or "kernel"
        pid = pids.get(component)
        if pid is None:
            pid = len(pids) + 1
            pids[component] = pid
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": component},
                }
            )
        args = {str(k): _jsonable(v) for k, v in span.tags.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": component,
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us or 0.0, 3),
                "pid": pid,
                "tid": span.trace_id,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    path: Union[str, Path], tracer_or_spans: Union[Tracer, list[Span]]
) -> Path:
    """Serialize to ``path``; open the file in chrome://tracing or Perfetto."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer_or_spans)))
    return path


def validate_chrome_trace(document: dict) -> list[str]:
    """Shape-check an exported document; returns problems (empty = valid).

    Used by CI so a malformed export fails the build rather than failing
    silently in a viewer months later.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event {index} has unknown phase {phase!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"event {index} lacks name/pid")
        if phase == "X":
            for field in ("ts", "dur", "tid"):
                if not isinstance(event.get(field), (int, float)):
                    problems.append(f"event {index} field {field!r} not numeric")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems


def latency_breakdown(
    tracer: Tracer, histograms: Optional[dict[str, Histogram]] = None
) -> str:
    """A per-phase latency table (durations in microseconds)."""
    histograms = histograms if histograms is not None else tracer.duration_histograms()
    if not histograms:
        return "(no finished spans)"
    rows = []
    for name, histogram in histograms.items():
        summary = histogram.summary()
        rows.append(
            (
                name,
                histogram.count,
                summary["p50"],
                summary["p95"],
                summary["p99"],
                histogram.count * summary["p50"],  # rough total: rank key
            )
        )
    rows.sort(key=lambda row: row[5], reverse=True)
    width = max(len(row[0]) for row in rows)
    lines = [
        f"{'phase':<{width}}  {'count':>8}  {'p50_us':>10}  {'p95_us':>10}  {'p99_us':>10}"
    ]
    for name, count, p50, p95, p99, _ in rows:
        lines.append(
            f"{name:<{width}}  {count:>8}  {p50:>10.1f}  {p95:>10.1f}  {p99:>10.1f}"
        )
    return "\n".join(lines)


def percentile_block(tracer: Tracer) -> dict[str, dict[str, float]]:
    """``{span_name: {count, p50_us, p95_us, p99_us}}`` for result files."""
    block: dict[str, dict[str, float]] = {}
    for name, histogram in sorted(tracer.duration_histograms().items()):
        summary = histogram.summary()
        block[name] = {
            "count": histogram.count,
            "p50_us": round(summary["p50"], 3),
            "p95_us": round(summary["p95"], 3),
            "p99_us": round(summary["p99"], 3),
        }
    return block
