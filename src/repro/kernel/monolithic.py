"""The integrated (monolithic) baseline engine — what the paper unbundles.

A classic single-process storage engine in the System R / ARIES lineage,
for head-to-head comparison with the unbundled kernel (experiments FIG1,
E-LOCK, E-OOO, E-FAIL):

- lock manager, log manager, buffer and access method in one component;
- *physiological* logging: every log record names the page it touches;
- the classic single ``pageLSN`` idempotence test
  (``op LSN <= pageLSN`` => skip) — valid here because the LSN is assigned
  inside the critical section that updates the page, the exact assumption
  out-of-order unbundled execution breaks (Section 5.1.1);
- structure modifications logged inline in the *same* log and redone in
  their original execution order (Section 5.2.1, "current technique");
- repeat-history redo from the checkpoint's RSSP, then undo of losers with
  compensation records.

Because locking happens *inside* the engine with the page at hand, the
baseline needs no probe messages, no read-before-write for undo info, and
no messages at all — the integration advantages the paper concedes, which
the benchmarks quantify against unbundling's flexibility.
"""

from __future__ import annotations

import bisect
import enum
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.common.config import DcConfig, TcConfig
from repro.common.errors import (
    CrashedError,
    DuplicateKeyError,
    NoSuchRecordError,
    PageOverflowError,
    ReproError,
    TransactionAborted,
)
from repro.common.lsn import Lsn, LsnGenerator, NULL_LSN
from repro.common.records import Key, Value, VersionedRecord, sizeof_key, sizeof_value
from repro.obs.tracing import NULL_SPAN, NULL_TRACER
from repro.sim.metrics import Metrics
from repro.storage.page import InnerPage, LeafPage, Page, PageImage
from repro.tc.lock_manager import LockManager, LockMode

# --------------------------------------------------------------------------
# Physiological log records (every one names its page).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MonoLogRecord:
    lsn: Lsn
    txn_id: int

    def encoded_size(self) -> int:
        return 24


@dataclass(frozen=True)
class MonoUpdate(MonoLogRecord):
    page_id: int = 0
    action: str = ""  # "insert" | "update" | "delete"
    table: str = ""
    key: Key = None
    value: Value = None
    prior: Value = None

    def encoded_size(self) -> int:
        return (
            super().encoded_size()
            + 8
            + sizeof_key(self.key)
            + sizeof_value(self.value)
            + sizeof_value(self.prior)
        )


@dataclass(frozen=True)
class MonoCompensation(MonoLogRecord):
    """CLR: redo-only inverse applied during rollback."""

    page_id: int = 0
    action: str = ""
    table: str = ""
    key: Key = None
    value: Value = None
    undo_next: Lsn = NULL_LSN

    def encoded_size(self) -> int:
        return super().encoded_size() + 16 + sizeof_key(self.key) + sizeof_value(self.value)


@dataclass(frozen=True)
class MonoSplit(MonoLogRecord):
    """A structure modification: physiological, redone in original order.

    The pre-split leaf is logged logically (split key); every other page
    the SMO touched (new leaf, parents, new inner pages, a new root) is
    carried as a physical image — the SQL-Server-style system transaction
    the paper's Section 5.2.1 describes, inlined in the single log.
    """

    page_id: int = 0  # the pre-split page
    split_key: Key = None
    images: tuple[PageImage, ...] = ()
    root_change: Optional[tuple[str, int]] = None

    def encoded_size(self) -> int:
        size = super().encoded_size() + 16 + sizeof_key(self.split_key)
        size += sum(image.encoded_size() for image in self.images)
        return size


@dataclass(frozen=True)
class MonoMerge(MonoLogRecord):
    target_image: Optional[PageImage] = None
    victim_id: int = 0
    parent_image: Optional[PageImage] = None
    root_change: Optional[tuple[str, int]] = None

    def encoded_size(self) -> int:
        size = super().encoded_size() + 16
        if self.target_image is not None:
            size += self.target_image.encoded_size()
        if self.parent_image is not None:
            size += self.parent_image.encoded_size()
        return size


@dataclass(frozen=True)
class MonoCreate(MonoLogRecord):
    table: str = ""
    root_image: Optional[PageImage] = None

    def encoded_size(self) -> int:
        size = super().encoded_size() + sizeof_key(self.table)
        if self.root_image is not None:
            size += self.root_image.encoded_size()
        return size


@dataclass(frozen=True)
class MonoCommit(MonoLogRecord):
    pass


@dataclass(frozen=True)
class MonoAbort(MonoLogRecord):
    pass


@dataclass(frozen=True)
class MonoEnd(MonoLogRecord):
    pass


@dataclass(frozen=True)
class MonoCheckpoint(MonoLogRecord):
    rssp: Lsn = NULL_LSN
    roots: Optional[dict] = None


class MonoTxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class MonoTransaction:
    """Handle mirroring :class:`repro.tc.transactional_component.Transaction`."""

    def __init__(self, engine: "MonolithicEngine", txn_id: int) -> None:
        self._engine = engine
        self.txn_id = txn_id
        self.state = MonoTxnState.ACTIVE
        self.undo_chain: list[MonoUpdate] = []
        self._started = time.perf_counter()
        #: Root span (NULL_SPAN when tracing is off), mirroring the
        #: unbundled Transaction so traces compare side by side.
        if engine.tracer.enabled:
            self.span = engine.tracer.start_trace(
                "txn", component="mono", txn_id=txn_id
            )
        else:
            self.span = NULL_SPAN

    def insert(self, table: str, key: Key, value: Value) -> None:
        if not self._engine.tracer.enabled:
            return self._engine.do_insert(self, table, key, value)
        try:
            with self._engine.tracer.activate(self.span):
                self._engine.do_insert(self, table, key, value)
        finally:
            self._close_span_if_done()

    def update(self, table: str, key: Key, value: Value) -> None:
        if not self._engine.tracer.enabled:
            return self._engine.do_update(self, table, key, value)
        try:
            with self._engine.tracer.activate(self.span):
                self._engine.do_update(self, table, key, value)
        finally:
            self._close_span_if_done()

    def delete(self, table: str, key: Key) -> None:
        if not self._engine.tracer.enabled:
            return self._engine.do_delete(self, table, key)
        try:
            with self._engine.tracer.activate(self.span):
                self._engine.do_delete(self, table, key)
        finally:
            self._close_span_if_done()

    def increment(self, table: str, key: Key, delta: float) -> None:
        if not self._engine.tracer.enabled:
            return self._engine.do_increment(self, table, key, delta)
        try:
            with self._engine.tracer.activate(self.span):
                self._engine.do_increment(self, table, key, delta)
        finally:
            self._close_span_if_done()

    def read(self, table: str, key: Key) -> Optional[Value]:
        if not self._engine.tracer.enabled:
            return self._engine.do_read(self, table, key)
        with self._engine.tracer.activate(self.span):
            return self._engine.do_read(self, table, key)

    def scan(
        self,
        table: str,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Key, Value]]:
        if not self._engine.tracer.enabled:
            return self._engine.do_scan(self, table, low, high, limit)
        with self._engine.tracer.activate(self.span):
            return self._engine.do_scan(self, table, low, high, limit)

    def commit(self) -> None:
        tracer = self._engine.tracer
        if not tracer.enabled:
            try:
                self._engine.commit(self)
            finally:
                self._observe_commit_latency()
            return
        try:
            with tracer.activate(self.span), tracer.span(
                "mono.commit", component="mono"
            ):
                self._engine.commit(self)
        finally:
            self._observe_commit_latency()
            self._close_span_if_done()

    def _observe_commit_latency(self) -> None:
        if self.state is MonoTxnState.COMMITTED:
            self._engine._commit_latency.append(
                (time.perf_counter() - self._started) * 1000.0
            )

    def abort(self) -> None:
        tracer = self._engine.tracer
        if not tracer.enabled:
            return self._engine.abort(self)
        try:
            with tracer.activate(self.span), tracer.span(
                "mono.abort", component="mono"
            ):
                self._engine.abort(self)
        finally:
            self._close_span_if_done()

    def _close_span_if_done(self) -> None:
        if self.state is not MonoTxnState.ACTIVE:
            self.span.finish(outcome=self.state.value)

    def __enter__(self) -> "MonoTransaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.state is MonoTxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def _check_active(self) -> None:
        if self.state is not MonoTxnState.ACTIVE:
            raise TransactionAborted(self.txn_id, f"transaction is {self.state.value}")


class MonolithicEngine:
    """Integrated storage engine: one log, one lock table, page LSNs."""

    def __init__(
        self,
        config: Optional[DcConfig] = None,
        tc_config: Optional[TcConfig] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.config = config or DcConfig()
        self.tc_config = tc_config or TcConfig()
        self.metrics = metrics or Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if (
            not self.tracer.enabled
            and type(self).force_log is MonolithicEngine.force_log
        ):
            # No tracing: log forces dispatch straight to the untraced body.
            self.force_log = self._force_log
        #: Commit latencies land in a lock-free buffer; ``metrics`` folds
        #: them into the ``mono.commit_latency_ms`` distribution lazily.
        self._commit_latency = self.metrics.buffer("mono.commit_latency_ms")
        self.locks = LockManager(
            self.metrics,
            self.tc_config.deadlock_detection,
            self.tc_config.lock_timeout,
            tracer=self.tracer,
        )
        self._lsns = LsnGenerator()
        self._log: list[MonoLogRecord] = []
        self._stable_count = 0
        self._stable_pages: dict[int, PageImage] = {}
        self._cache: dict[int, Page] = {}
        self._roots: dict[str, int] = {}
        self._next_page_id = 1
        self._txn_ids = itertools.count(1)
        self._rssp: Lsn = NULL_LSN
        self._crashed = False
        self._mutex = threading.RLock()

    # -- log plumbing -----------------------------------------------------------

    def _append(self, build) -> MonoLogRecord:
        record = build(self._lsns.next())
        self._log.append(record)
        self.metrics.incr("mono.log_appends")
        self.metrics.incr("mono.log_bytes", record.encoded_size())
        return record

    def force_log(self) -> Lsn:
        with self.tracer.span("mono.log_force", component="mono"):
            return self._force_log()

    def _force_log(self) -> Lsn:
        self._stable_count = len(self._log)
        self.metrics.incr("mono.log_forces")
        return self._log[-1].lsn if self._log else NULL_LSN

    @property
    def stable_lsn(self) -> Lsn:
        if self._stable_count == 0:
            return NULL_LSN
        return self._log[self._stable_count - 1].lsn

    # -- pages -----------------------------------------------------------------------

    def _allocate_page_id(self) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def _fetch(self, page_id: int) -> Page:
        page = self._cache.get(page_id)
        if page is not None:
            self.metrics.incr("mono.cache_hits")
            return page
        image = self._stable_pages.get(page_id)
        if image is None:
            raise ReproError(f"monolithic: page {page_id} missing")
        self.metrics.incr("mono.cache_misses")
        page = image.materialize()
        self._cache[page_id] = page
        return page

    def _flush_page(self, page: Page) -> None:
        """Classic WAL: the log must be stable past the page LSN first."""
        if page.page_lsn > self.stable_lsn:
            self.force_log()
        self._stable_pages[page.page_id] = page.snapshot()
        page.dirty = False
        self.metrics.incr("mono.page_flushes")

    def flush_all(self) -> None:
        for page in list(self._cache.values()):
            if page.dirty:
                self._flush_page(page)

    # -- schema -------------------------------------------------------------------------

    def create_table(self, name: str) -> None:
        self._check_up()
        with self._mutex:
            if name in self._roots:
                raise ReproError(f"table {name!r} already exists")
            root = LeafPage(self._allocate_page_id())
            record = self._append(
                lambda lsn: MonoCreate(
                    lsn=lsn, txn_id=0, table=name, root_image=root.snapshot()
                )
            )
            root.page_lsn = record.lsn
            root.dirty = True
            self._cache[root.page_id] = root
            self._roots[name] = root.page_id
            self.force_log()

    def table_names(self) -> list[str]:
        return sorted(self._roots)

    # -- descend / structure ----------------------------------------------------------------

    def _descend(self, table: str, key: Key) -> tuple[LeafPage, list[InnerPage]]:
        root_id = self._roots.get(table)
        if root_id is None:
            raise ReproError(f"unknown table {table!r}")
        path: list[InnerPage] = []
        page = self._fetch(root_id)
        while isinstance(page, InnerPage):
            path.append(page)
            index = bisect.bisect_right(page.separators, key)
            page = self._fetch(page.children[index])
        assert isinstance(page, LeafPage)
        return page, path

    def _split_leaf(self, table: str, leaf: LeafPage, path: list[InnerPage]) -> None:
        """SMO logged inline; redo happens in original order (Section 5.2.1)."""
        split_key = leaf.choose_split_key()
        new_leaf = LeafPage(self._allocate_page_id())
        new_leaf.absorb(record.clone() for record in leaf.extract_from(split_key))
        self._cache[new_leaf.page_id] = new_leaf
        changed: list[Page] = [new_leaf]
        root_change = self._post_to_parent(
            table, path, split_key, new_leaf.page_id, changed
        )
        record = self._append(
            lambda lsn: MonoSplit(
                lsn=lsn,
                txn_id=0,
                page_id=leaf.page_id,
                split_key=split_key,
                images=tuple(page.snapshot() for page in changed),
                root_change=root_change,
            )
        )
        for page in [leaf, *changed]:
            page.page_lsn = record.lsn
            page.dirty = True
        # Re-snapshot now that page LSNs are final (nothing forced between).
        self._log[-1] = MonoSplit(
            lsn=record.lsn,
            txn_id=0,
            page_id=leaf.page_id,
            split_key=split_key,
            images=tuple(page.snapshot() for page in changed),
            root_change=root_change,
        )
        self.metrics.incr("mono.splits")

    def _post_to_parent(
        self,
        table: str,
        path: list[InnerPage],
        separator: Key,
        right_id: int,
        changed: list[Page],
    ) -> Optional[tuple[str, int]]:
        """Insert the new separator, splitting inner pages as needed.

        Returns the root change (if the tree grew) and appends every page
        this touched to ``changed`` for physical logging.
        """
        if not path:
            old_root = self._roots[table]
            new_root = InnerPage(self._allocate_page_id())
            new_root.separators = [separator]
            new_root.children = [old_root, right_id]
            self._cache[new_root.page_id] = new_root
            self._roots[table] = new_root.page_id
            changed.append(new_root)
            return (table, new_root.page_id)
        parent = path[-1]
        parent.insert_child(separator, right_id)
        changed.append(parent)
        if parent.fits(0, self.config.page_size):
            return None
        mid = len(parent.separators) // 2
        promoted = parent.separators[mid]
        right_inner = InnerPage(self._allocate_page_id())
        right_inner.separators = parent.separators[mid + 1 :]
        right_inner.children = parent.children[mid + 1 :]
        del parent.separators[mid:]
        del parent.children[mid + 1 :]
        self._cache[right_inner.page_id] = right_inner
        changed.append(right_inner)
        return self._post_to_parent(
            table, path[:-1], promoted, right_inner.page_id, changed
        )

    def _maybe_consolidate(self, table: str, key_hint: Key) -> None:
        leaf, path = self._descend(table, key_hint)
        if not path:
            return
        if leaf.fill_fraction(self.config.page_size) >= self.config.min_fill:
            return
        parent = path[-1]
        index = parent.child_index(leaf.page_id)
        if index > 0:
            target = self._fetch(parent.children[index - 1])
            victim: Page = leaf
        elif index + 1 < len(parent.children):
            target = leaf
            victim = self._fetch(parent.children[index + 1])
        else:
            return
        if not isinstance(target, LeafPage) or not isinstance(victim, LeafPage):
            return
        payload = sum(r.encoded_size() for r in victim.records_in_order())
        if not target.fits(payload, self.config.page_size):
            return
        target.absorb(record.clone() for record in victim.records_in_order())
        parent.remove_child(victim.page_id)
        root_change: Optional[tuple[str, int]] = None
        if parent.page_id == self._roots[table] and len(parent.children) == 1:
            self._roots[table] = parent.children[0]
            root_change = (table, parent.children[0])
        record = self._append(
            lambda lsn: MonoMerge(
                lsn=lsn,
                txn_id=0,
                target_image=None,  # filled below once page_lsn is set
                victim_id=victim.page_id,
                parent_image=None,
                root_change=root_change,
            )
        )
        target.page_lsn = record.lsn
        parent.page_lsn = record.lsn
        target.dirty = True
        parent.dirty = True
        # Replace the staged record with complete images (atomic append is
        # preserved: nothing was forced in between).
        self._log[-1] = MonoMerge(
            lsn=record.lsn,
            txn_id=0,
            target_image=target.snapshot(),
            victim_id=victim.page_id,
            parent_image=parent.snapshot(),
            root_change=root_change,
        )
        self._cache.pop(victim.page_id, None)
        self._stable_pages.pop(victim.page_id, None)
        self.metrics.incr("mono.merges")

    # -- record operations --------------------------------------------------------------------

    def begin(self) -> MonoTransaction:
        self._check_up()
        txn = MonoTransaction(self, next(self._txn_ids))
        self.metrics.incr("mono.begins")
        return txn

    def _check_up(self) -> None:
        if self._crashed:
            raise CrashedError("monolithic engine")

    def _lock_record(self, txn: MonoTransaction, table: str, key: Key, mode: LockMode) -> None:
        try:
            self.locks.acquire(
                txn.txn_id,
                ("table", table),
                LockMode.IS if mode is LockMode.S else LockMode.IX,
            )
            self.locks.acquire(txn.txn_id, ("rec", table, key), mode)
        except TransactionAborted:
            self.abort(txn)
            raise

    def _lock_gap_above(self, txn: MonoTransaction, table: str, key: Key, mode: LockMode) -> None:
        """Key-range (next-key) locking done *inside* the engine: the
        successor is read straight off the pages — no probe messages."""
        if not self.tc_config.phantom_protection:
            return
        successor = self._successor(table, key)
        guard: object = successor if successor is not None else "<END>"
        try:
            self.locks.acquire(txn.txn_id, ("gap", table, guard), mode)
        except TransactionAborted:
            self.abort(txn)
            raise
        self.metrics.incr("mono.gap_locks")

    def _descend_with_bound(
        self, table: str, key: Key
    ) -> tuple[LeafPage, Optional[Key]]:
        """Leaf for ``key`` plus the upper bound of its key range."""
        root_id = self._roots.get(table)
        if root_id is None:
            raise ReproError(f"unknown table {table!r}")
        upper: Optional[Key] = None
        page = self._fetch(root_id)
        while isinstance(page, InnerPage):
            index = bisect.bisect_right(page.separators, key)
            if index < len(page.separators):
                upper = page.separators[index]
            page = self._fetch(page.children[index])
        assert isinstance(page, LeafPage)
        return page, upper

    def _successor(self, table: str, key: Key) -> Optional[Key]:
        leaf, upper = self._descend_with_bound(table, key)
        while True:
            for candidate in leaf.keys_after(key):
                return candidate
            if upper is None:
                return None
            # Keys in the next leaf are all above `upper` > `key`.
            leaf, upper = self._descend_with_bound(table, upper)

    def do_insert(self, txn: MonoTransaction, table: str, key: Key, value: Value) -> None:
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._lock_record(txn, table, key, LockMode.X)
            self._lock_gap_above(txn, table, key, LockMode.X)
            leaf, path = self._descend(table, key)
            existing = leaf.get(key)
            if existing is not None and existing.committed is not None:
                raise DuplicateKeyError(table, key)
            record_obj = VersionedRecord(key=key, committed=value)
            if not leaf.fits(record_obj.encoded_size(), self.config.page_size):
                self._split_leaf(table, leaf, path)
                leaf, path = self._descend(table, key)
            log_rec = self._append(
                lambda lsn: MonoUpdate(
                    lsn=lsn,
                    txn_id=txn.txn_id,
                    page_id=leaf.page_id,
                    action="insert",
                    table=table,
                    key=key,
                    value=value,
                )
            )
            with leaf.latch:
                self.metrics.incr("mono.latches")
                leaf.put(record_obj)
                leaf.page_lsn = log_rec.lsn
                leaf.dirty = True
            txn.undo_chain.append(log_rec)  # type: ignore[arg-type]
            self.metrics.incr("mono.mutations")

    def do_update(self, txn: MonoTransaction, table: str, key: Key, value: Value) -> None:
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._lock_record(txn, table, key, LockMode.X)
            leaf, path = self._descend(table, key)
            existing = leaf.get(key)
            if existing is None or existing.committed is None:
                raise NoSuchRecordError(table, key)
            prior = existing.committed
            new_rec = existing.clone()
            new_rec.committed = value
            delta = new_rec.encoded_size() - existing.encoded_size()
            if not leaf.fits(delta, self.config.page_size):
                self._split_leaf(table, leaf, path)
                leaf, path = self._descend(table, key)
            log_rec = self._append(
                lambda lsn: MonoUpdate(
                    lsn=lsn,
                    txn_id=txn.txn_id,
                    page_id=leaf.page_id,
                    action="update",
                    table=table,
                    key=key,
                    value=value,
                    prior=prior,
                )
            )
            with leaf.latch:
                self.metrics.incr("mono.latches")
                leaf.put(new_rec)
                leaf.page_lsn = log_rec.lsn
                leaf.dirty = True
            txn.undo_chain.append(log_rec)  # type: ignore[arg-type]
            self.metrics.incr("mono.mutations")

    def do_delete(self, txn: MonoTransaction, table: str, key: Key) -> None:
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._lock_record(txn, table, key, LockMode.X)
            self._lock_gap_above(txn, table, key, LockMode.X)
            leaf, _path = self._descend(table, key)
            existing = leaf.get(key)
            if existing is None or existing.committed is None:
                raise NoSuchRecordError(table, key)
            prior = existing.committed
            log_rec = self._append(
                lambda lsn: MonoUpdate(
                    lsn=lsn,
                    txn_id=txn.txn_id,
                    page_id=leaf.page_id,
                    action="delete",
                    table=table,
                    key=key,
                    prior=prior,
                )
            )
            with leaf.latch:
                self.metrics.incr("mono.latches")
                leaf.remove(key)
                leaf.page_lsn = log_rec.lsn
                leaf.dirty = True
            txn.undo_chain.append(log_rec)  # type: ignore[arg-type]
            self._maybe_consolidate(table, key)
            self.metrics.incr("mono.mutations")

    def do_increment(
        self, txn: MonoTransaction, table: str, key: Key, delta: float
    ) -> None:
        """Parity with the unbundled kernel's logical increment."""
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._lock_record(txn, table, key, LockMode.X)
            leaf, _path = self._descend(table, key)
            existing = leaf.get(key)
            if existing is None or existing.committed is None:
                raise NoSuchRecordError(table, key)
            current = existing.committed
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                raise ReproError(f"record {key!r} is not numeric")
            new_rec = existing.clone()
            new_rec.committed = current + delta
            log_rec = self._append(
                lambda lsn: MonoUpdate(
                    lsn=lsn,
                    txn_id=txn.txn_id,
                    page_id=leaf.page_id,
                    action="update",
                    table=table,
                    key=key,
                    value=current + delta,
                    prior=current,
                )
            )
            with leaf.latch:
                self.metrics.incr("mono.latches")
                leaf.put(new_rec)
                leaf.page_lsn = log_rec.lsn
                leaf.dirty = True
            txn.undo_chain.append(log_rec)  # type: ignore[arg-type]
            self.metrics.incr("mono.mutations")

    def do_read(self, txn: MonoTransaction, table: str, key: Key) -> Optional[Value]:
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._lock_record(txn, table, key, LockMode.S)
            leaf, _path = self._descend(table, key)
            with leaf.latch:
                self.metrics.incr("mono.latches")
                record = leaf.get(key)
                self.metrics.incr("mono.reads")
                return record.committed if record is not None else None

    def do_scan(
        self,
        txn: MonoTransaction,
        table: str,
        low: Optional[Key],
        high: Optional[Key],
        limit: Optional[int],
    ) -> list[tuple[Key, Value]]:
        """Integrated key-range locking: lock keys as pages are walked."""
        self._check_up()
        txn._check_active()
        with self._mutex:
            try:
                self.locks.acquire(txn.txn_id, ("table", table), LockMode.IS)
            except TransactionAborted:
                self.abort(txn)
                raise
            results: list[tuple[Key, Value]] = []
            leaf, _path = self._descend(table, low) if low is not None else (
                self._leftmost(table),
                [],
            )
            cursor = low
            while True:
                with leaf.latch:
                    self.metrics.incr("mono.latches")
                    for record in leaf.range(cursor, high):
                        self._lock_record(txn, table, record.key, LockMode.S)
                        if self.tc_config.phantom_protection:
                            self.locks.acquire(
                                txn.txn_id, ("gap", table, record.key), LockMode.S
                            )
                            self.metrics.incr("mono.gap_locks")
                        if record.committed is None:
                            continue
                        results.append((record.key, record.committed))
                        if limit is not None and len(results) >= limit:
                            return results
                    last = leaf.max_key()
                if last is None or (high is not None and last > high):
                    break
                nxt = self._successor(table, last)
                if nxt is None or (high is not None and nxt > high):
                    break
                cursor = nxt
                leaf, _path = self._descend(table, nxt)
            if self.tc_config.phantom_protection:
                boundary = self._successor(table, high) if high is not None else None
                guard: object = boundary if boundary is not None else "<END>"
                self.locks.acquire(txn.txn_id, ("gap", table, guard), LockMode.S)
                self.metrics.incr("mono.gap_locks")
            self.metrics.incr("mono.scans")
            return results

    def _leftmost(self, table: str) -> LeafPage:
        page = self._fetch(self._roots[table])
        while isinstance(page, InnerPage):
            page = self._fetch(page.children[0])
        assert isinstance(page, LeafPage)
        return page

    # -- commit / abort ---------------------------------------------------------------------------

    def commit(self, txn: MonoTransaction) -> None:
        self._check_up()
        txn._check_active()
        with self._mutex:
            self._append(lambda lsn: MonoCommit(lsn=lsn, txn_id=txn.txn_id))
            self.force_log()
            self._append(lambda lsn: MonoEnd(lsn=lsn, txn_id=txn.txn_id))
        self.locks.release_all(txn.txn_id)
        txn.state = MonoTxnState.COMMITTED
        self.metrics.incr("mono.commits")

    def abort(self, txn: MonoTransaction) -> None:
        self._check_up()
        if txn.state is not MonoTxnState.ACTIVE:
            return
        with self._mutex:
            self._append(lambda lsn: MonoAbort(lsn=lsn, txn_id=txn.txn_id))
            self._rollback(txn.txn_id, list(reversed(txn.undo_chain)))
            self._append(lambda lsn: MonoEnd(lsn=lsn, txn_id=txn.txn_id))
        self.locks.release_all(txn.txn_id)
        txn.state = MonoTxnState.ABORTED
        self.metrics.incr("mono.aborts")

    def _rollback(self, txn_id: int, to_undo: list[MonoUpdate]) -> None:
        for index, record in enumerate(to_undo):
            undo_next = to_undo[index + 1].lsn if index + 1 < len(to_undo) else NULL_LSN
            self._apply_inverse(txn_id, record, undo_next)

    def _apply_inverse(self, txn_id: int, record: MonoUpdate, undo_next: Lsn) -> None:
        leaf, _path = self._descend(record.table, record.key)
        if record.action == "insert":
            action, value = "delete", None
        elif record.action == "delete":
            action, value = "insert", record.prior
        else:
            action, value = "update", record.prior
        clr = self._append(
            lambda lsn: MonoCompensation(
                lsn=lsn,
                txn_id=txn_id,
                page_id=leaf.page_id,
                action=action,
                table=record.table,
                key=record.key,
                value=value,
                undo_next=undo_next,
            )
        )
        with leaf.latch:
            self.metrics.incr("mono.latches")
            self._apply_action(leaf, action, record.key, value)
            leaf.page_lsn = clr.lsn
        self.metrics.incr("mono.undo_ops")

    @staticmethod
    def _apply_action(leaf: LeafPage, action: str, key: Key, value: Value) -> None:
        if action == "insert":
            leaf.put(VersionedRecord(key=key, committed=value))
        elif action == "delete":
            leaf.remove(key)
        else:
            existing = leaf.get(key)
            record = existing.clone() if existing is not None else VersionedRecord(key=key)
            record.committed = value
            leaf.put(record)

    # -- checkpoint -------------------------------------------------------------------------------------

    def checkpoint(self) -> None:
        self._check_up()
        with self._mutex:
            self.force_log()
            self.flush_all()
            rssp = self._lsns.last + 1
            self._append(
                lambda lsn: MonoCheckpoint(
                    lsn=lsn, txn_id=0, rssp=rssp, roots=dict(self._roots)
                )
            )
            self.force_log()
            self._rssp = rssp
            self.metrics.incr("mono.checkpoints")

    # -- crash / recovery ----------------------------------------------------------------------------------

    def crash(self) -> int:
        """Monolithic failure is never partial: log tail, cache and lock
        table all vanish together (Section 5.3.1)."""
        self._crashed = True
        lost = len(self._log) - self._stable_count
        del self._log[self._stable_count :]
        self._cache.clear()
        self.locks.clear()
        self.metrics.incr("mono.crashes")
        return lost

    def recover(self) -> dict[str, int]:
        """ARIES-style: analysis, repeat-history redo (page-LSN test), undo."""
        with self._mutex:
            self._lsns.advance_to(self._log[-1].lsn if self._log else NULL_LSN)
            self._recover_page_allocator()
            rssp, roots, txns = self._analyze()
            if roots is not None:
                self._roots = dict(roots)
            redone = self._redo(rssp)
            undone = 0
            for txn_id, info in txns.items():
                if info["ended"] or info["committed"]:
                    if not info["ended"]:
                        self._append(lambda lsn, t=txn_id: MonoEnd(lsn=lsn, txn_id=t))
                    continue
                undone += self._undo_loser(txn_id, info)
            self.force_log()
            self._crashed = False
            self.metrics.incr("mono.recoveries")
            return {"rssp": rssp, "redo": redone, "undo": undone}

    def _recover_page_allocator(self) -> None:
        top = max(self._stable_pages, default=0)
        for record in self._log:
            if isinstance(record, MonoCreate) and record.root_image is not None:
                top = max(top, record.root_image.page_id)
            elif isinstance(record, MonoSplit):
                for image in record.images:
                    top = max(top, image.page_id)
            elif isinstance(record, MonoMerge) and record.target_image is not None:
                top = max(top, record.target_image.page_id)
        if top >= self._next_page_id:
            self._next_page_id = top + 1

    def _analyze(self):
        rssp: Lsn = NULL_LSN
        roots: Optional[dict] = None
        txns: dict[int, dict] = {}
        self._roots = {}
        for record in self._log:
            if isinstance(record, MonoCheckpoint):
                rssp = record.rssp
                roots = record.roots
            elif isinstance(record, MonoCreate):
                assert record.root_image is not None
                self._roots[record.table] = record.root_image.page_id
            elif isinstance(record, (MonoSplit, MonoMerge)):
                if record.root_change is not None:
                    table, new_root = record.root_change
                    self._roots[table] = new_root
            info = txns.setdefault(
                record.txn_id,
                {"ops": [], "clrs": [], "committed": False, "ended": False},
            )
            if isinstance(record, MonoUpdate):
                info["ops"].append(record)
            elif isinstance(record, MonoCompensation):
                info["clrs"].append(record)
            elif isinstance(record, MonoCommit):
                info["committed"] = True
            elif isinstance(record, MonoEnd):
                info["ended"] = True
        if roots is not None:
            merged = dict(roots)
            merged.update(self._roots)
            roots = merged
        else:
            roots = dict(self._roots)
        return rssp, roots, {t: i for t, i in txns.items() if t != 0}

    def _redo(self, rssp: Lsn) -> int:
        """Repeat history: every record (user + SMO) in original order."""
        redone = 0
        for record in self._log:
            if record.lsn < rssp:
                continue
            if isinstance(record, MonoCreate):
                assert record.root_image is not None
                page = self._fetch_for_redo(record.root_image.page_id)
                if page is None:
                    page = record.root_image.materialize()
                    page.dirty = True
                    self._cache[record.root_image.page_id] = page
                    redone += 1
            elif isinstance(record, MonoSplit):
                redone += self._redo_split(record)
            elif isinstance(record, MonoMerge):
                redone += self._redo_merge(record)
            elif isinstance(record, (MonoUpdate, MonoCompensation)):
                leaf = self._fetch_for_redo(record.page_id)
                if leaf is None or not isinstance(leaf, LeafPage):
                    continue
                if record.lsn <= leaf.page_lsn:
                    self.metrics.incr("mono.redo_skipped")
                    continue  # the classic pageLSN idempotence test
                self._apply_action(leaf, record.action, record.key, record.value)
                leaf.page_lsn = record.lsn
                leaf.dirty = True
                redone += 1
        return redone

    def _fetch_for_redo(self, page_id: int) -> Optional[Page]:
        page = self._cache.get(page_id)
        if page is not None:
            return page
        image = self._stable_pages.get(page_id)
        if image is None:
            return None
        page = image.materialize()
        self._cache[page_id] = page
        return page

    def _redo_split(self, record: MonoSplit) -> int:
        count = 0
        for image in record.images:
            page = self._fetch_for_redo(image.page_id)
            if page is None or page.page_lsn < record.lsn:
                page = image.materialize()
                page.dirty = True
                self._cache[image.page_id] = page
                count += 1
        old = self._fetch_for_redo(record.page_id)
        if old is not None and isinstance(old, LeafPage) and old.page_lsn < record.lsn:
            old.extract_from(record.split_key)
            old.page_lsn = record.lsn
            count += 1
        return count

    def _redo_merge(self, record: MonoMerge) -> int:
        assert record.target_image is not None and record.parent_image is not None
        count = 0
        target = self._fetch_for_redo(record.target_image.page_id)
        if target is None or target.page_lsn < record.lsn:
            target = record.target_image.materialize()
            target.dirty = True
            self._cache[record.target_image.page_id] = target
            count += 1
        parent = self._fetch_for_redo(record.parent_image.page_id)
        if parent is None or parent.page_lsn < record.lsn:
            parent = record.parent_image.materialize()
            parent.dirty = True
            self._cache[record.parent_image.page_id] = parent
            count += 1
        self._cache.pop(record.victim_id, None)
        self._stable_pages.pop(record.victim_id, None)
        return count

    def _undo_loser(self, txn_id: int, info: dict) -> int:
        clrs: list[MonoCompensation] = info["clrs"]
        resume: Optional[Lsn] = clrs[-1].undo_next if clrs else None
        to_undo = [
            record
            for record in info["ops"]
            if resume is None or record.lsn <= resume
        ]
        to_undo.sort(key=lambda record: record.lsn, reverse=True)
        self._rollback(txn_id, to_undo)
        self._append(lambda lsn: MonoEnd(lsn=lsn, txn_id=txn_id))
        return len(to_undo)

    # -- introspection --------------------------------------------------------------------------------------

    def record_count(self, table: str) -> int:
        count = 0
        stack = [self._roots[table]]
        while stack:
            page = self._fetch(stack.pop())
            if isinstance(page, InnerPage):
                stack.extend(page.children)
            else:
                assert isinstance(page, LeafPage)
                count += page.record_count()
        return count

    @property
    def crashed(self) -> bool:
        return self._crashed
