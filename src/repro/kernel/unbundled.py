"""One-call assembly of an unbundled kernel (Figure 1).

``UnbundledKernel`` wires one TC to one or more DCs over configurable
channels and exposes the small surface applications use: create tables,
begin transactions, checkpoint, inject crashes, recover.  Multi-TC
deployments (Section 6) are assembled explicitly by
:mod:`repro.cloud.deployment` instead, since they need ownership
partitioning.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Optional

from repro.common.config import KernelConfig
from repro.common.errors import ReproError
from repro.dc.data_component import DataComponent
from repro.obs.tracing import NULL_TRACER
from repro.sim.metrics import Metrics
from repro.storage.buffer import ResetMode
from repro.tc.transactional_component import Transaction, TransactionalComponent

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.faults import FaultInjector


class UnbundledKernel:
    """A TC plus ``dc_count`` DCs — the Figure 1 architecture, assembled."""

    def __init__(
        self,
        config: Optional[KernelConfig] = None,
        metrics: Optional[Metrics] = None,
        dc_count: int = 1,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.config = config or KernelConfig()
        self.metrics = metrics or Metrics()
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dcs: dict[str, DataComponent] = {}
        self._data_dir: Optional[str] = None
        self._owns_data_dir = False
        process_mode = self.config.channel.process_family
        shm_mode = self.config.channel.transport == "shm"
        tc_process_mode = self.config.tc_processes >= 1
        if process_mode and faults is not None:
            raise ReproError(
                "fault injection hooks are local-only; the process transport "
                "exercises failures by killing DC processes instead "
                "(docs/architecture.md §10)"
            )
        if self.config.tc_processes > 1:
            raise ReproError(
                "the kernel assembles one TC; a horizontally scaled TC tier "
                "(tc_processes > 1) is a cloud deployment — use "
                "repro.cloud.router.TcServiceDeployment"
            )
        if tc_process_mode:
            self.tc = None  # spawned below, once the DC sockets exist
        else:
            self.tc = TransactionalComponent(
                config=self.config.tc,
                metrics=self.metrics,
                faults=faults,
                tracer=self.tracer,
            )
        if process_mode:
            from repro.net.process import RemoteDc

            self._data_dir = self.config.data_dir or tempfile.mkdtemp(
                prefix="repro-dcs-"
            )
            self._owns_data_dir = self.config.data_dir is None
            os.makedirs(self._data_dir, exist_ok=True)
        for index in range(dc_count):
            name = f"dc{index + 1}" if dc_count > 1 else "dc"
            if process_mode:
                # With a TC process in play the DC must also listen on a
                # socket — the TC server connects there, not via our pipe.
                # listen_host selects the TCP data plane (ephemeral port,
                # pinned from the Hello) over Unix-domain sockets.
                listen = ""
                if tc_process_mode:
                    if self.config.channel.listen_host:
                        listen = f"tcp://{self.config.channel.listen_host}:0"
                    else:
                        listen = os.path.join(self._data_dir, f"{name}.sock")
                dc = RemoteDc(
                    name,
                    config=self.config.dc,
                    metrics=self.metrics,
                    journal_path=os.path.join(self._data_dir, f"{name}.journal"),
                    start_method=self.config.channel.process_start_method,
                    request_timeout_s=self.config.channel.request_timeout_s,
                    listen_path=listen,
                    fast_codec=self.config.channel.fast_codec,
                    shm_ring_bytes=(
                        self.config.channel.shm_ring_bytes if shm_mode else 0
                    ),
                    shm_spin=self.config.channel.shm_spin,
                    shm_park_ms=self.config.channel.shm_park_ms,
                )
            else:
                dc = DataComponent(
                    name,
                    config=self.config.dc,
                    metrics=self.metrics,
                    faults=faults,
                    tracer=self.tracer,
                )
            self.dcs[name] = dc
            if self.tc is not None:
                self.tc.attach_dc(dc, self.config.channel)
        if tc_process_mode:
            from repro.net.tcclient import RemoteTc

            self.tc = RemoteTc(
                "tc1",
                tc_id=1,
                journal_path=os.path.join(self._data_dir, "tc1.journal"),
                dcs={dc.name: dc.listen_path for dc in self.dcs.values()},
                config=self.config.tc,
                metrics=self.metrics,
                sharing_mode=self.config.tc.sharing_mode,
                start_method=self.config.channel.process_start_method,
                request_timeout_s=self.config.channel.request_timeout_s,
                fast_codec=self.config.channel.fast_codec,
                shm_ring_bytes=(
                    self.config.channel.shm_ring_bytes if shm_mode else 0
                ),
                shm_spin=self.config.channel.shm_spin,
                shm_park_ms=self.config.channel.shm_park_ms,
            )
            for dc in self.dcs.values():
                dc.restart_listeners.append(self._notify_tc_of_dc_restart)

    def _notify_tc_of_dc_restart(self, dc) -> None:
        """§5.2.1 prompt forwarding for the fully unbundled topology: the
        TC server holds its *own* connection to the healed DC, so the heal
        must be relayed rather than handled in this process.  A crashed TC
        needs no relay — its restart rebuilds every DC connection."""
        if not self.tc.crashed:
            self.tc.notify_dc_restart(dc.name)

    @property
    def dc(self) -> DataComponent:
        """The sole DC (convenience for single-DC kernels)."""
        if len(self.dcs) != 1:
            raise ValueError("kernel has multiple DCs; address them by name")
        return next(iter(self.dcs.values()))

    # -- schema ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        kind: str = "btree",
        versioned: bool = False,
        dc_name: Optional[str] = None,
        bucket_count: int = 16,
    ) -> None:
        dc = self.dcs[dc_name] if dc_name is not None else self.dc
        dc.create_table(name, kind=kind, versioned=versioned, bucket_count=bucket_count)
        self.tc.refresh_routes(dc)

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> Transaction:
        return self.tc.begin()

    def checkpoint(self) -> bool:
        return self.tc.checkpoint()

    # -- failure injection -------------------------------------------------------------

    def crash_dc(self, dc_name: Optional[str] = None) -> None:
        dc = self.dcs[dc_name] if dc_name is not None else self.dc
        dc.crash()

    def recover_dc(self, dc_name: Optional[str] = None) -> None:
        """DC restart: structures first, then the TC is prompted to redo."""
        dc = self.dcs[dc_name] if dc_name is not None else self.dc
        dc.recover(notify_tcs=True)

    def crash_tc(self) -> int:
        return self.tc.crash()

    def recover_tc(self, reset_mode: ResetMode = ResetMode.RECORD_RESET) -> dict:
        return self.tc.restart(reset_mode)

    @property
    def tc_pid(self) -> Optional[int]:
        """PID of the TC server process (None for an in-process TC)."""
        return getattr(self.tc, "pid", None) if self.config.tc_processes else None

    def crash_all(self) -> None:
        """The fail-together case: no new techniques needed (Section 5.3)."""
        self.tc.crash()
        for dc in self.dcs.values():
            dc.crash()

    def recover_all(self) -> None:
        for dc in self.dcs.values():
            dc.recover(notify_tcs=False)
        self.tc.restart()

    # -- lifecycle (process deployment mode) -------------------------------------------

    def close(self) -> None:
        """Shut down TC/DC server processes and reclaim a kernel-owned data
        directory.  A no-op for the in-process transport."""
        tc_shutdown = getattr(self.tc, "shutdown", None)
        if tc_shutdown is not None:
            # The TC holds client connections into the DC pool; stop it
            # before its DCs disappear out from under it.
            tc_shutdown()
        for dc in self.dcs.values():
            shutdown = getattr(dc, "shutdown", None)
            if shutdown is not None:
                shutdown()
        if self._owns_data_dir and self._data_dir is not None:
            shutil.rmtree(self._data_dir, ignore_errors=True)
            self._data_dir = None

    def __enter__(self) -> "UnbundledKernel":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
