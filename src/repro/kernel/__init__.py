"""Kernel assemblies: the unbundled TC/DC kernel and the monolithic baseline."""

from repro.kernel.unbundled import UnbundledKernel

__all__ = ["UnbundledKernel"]
