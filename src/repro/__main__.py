"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``demo``        — a two-minute guided tour of the unbundled kernel
- ``stats``       — build a sample workload and print component stats
- ``experiments`` — list the experiment index (benchmarks per paper claim)
- ``trace [preset] [out.json]`` — run a traced YCSB workload (preset A-F,
  default A), write Chrome trace-event JSON (open in chrome://tracing or
  https://ui.perfetto.dev) and print the per-phase latency breakdown
- ``explore``     — deterministic schedule exploration with the
  serializability + recovery-ordering oracle; ``--replay artifact.json``
  re-executes a saved failing ``(seed, trace)`` exactly
- ``chaos``       — seeded invariant-checking chaos run (``--process``
  for real DC processes and ``kill -9`` faults; ``--tc-process`` /
  ``--kill-tc-every`` put the TC in its own process and kill it too;
  ``--tcp`` runs the TC↔DC data plane over loopback TCP; ``--shm``
  moves co-located links onto shared-memory rings)
- ``serve-tc``    — run one TC server process on a Unix socket against an
  already-running DC pool (the TC service tier's standalone mode)
"""

from __future__ import annotations

import sys


def _demo() -> None:
    from repro import KernelConfig, UnbundledKernel
    from repro.common.config import DcConfig

    print("== repro demo: an unbundled transactional kernel ==\n")
    kernel = UnbundledKernel(KernelConfig(dc=DcConfig(page_size=512)))
    kernel.create_table("accounts")
    print("1. 100 inserts through TC -> channel -> DC (small pages => splits)")
    for account in range(100):
        with kernel.begin() as txn:
            txn.insert("accounts", account, {"balance": 100})
    print(f"   leaf splits: {kernel.metrics.get('btree.leaf_splits')}, "
          f"messages: {kernel.metrics.get('channel.requests')}")

    print("2. an uncommitted transfer, then a TC crash")
    transfer = kernel.begin()
    transfer.update("accounts", 1, {"balance": 60})
    transfer.update("accounts", 2, {"balance": 140})
    lost = kernel.crash_tc()
    stats = kernel.recover_tc()
    print(f"   lost {lost} volatile log records; restart: {stats}")
    with kernel.begin() as txn:
        assert txn.read("accounts", 1)["balance"] == 100

    print("3. a DC crash: cache gone, logical redo replays")
    kernel.crash_dc()
    kernel.recover_dc()
    with kernel.begin() as txn:
        assert len(txn.scan("accounts")) == 100
    print(f"   redo ops resent: {kernel.metrics.get('tc.redo_ops')}")

    print("4. checkpoint terminates the resend contract")
    kernel.checkpoint()
    kernel.crash_tc()
    stats = kernel.recover_tc()
    print(f"   post-checkpoint restart redid {stats['redo_ops']} op(s)")
    print("\ndemo OK — see examples/ for the full walkthroughs")


def _stats() -> None:
    import json

    from repro import UnbundledKernel

    kernel = UnbundledKernel()
    kernel.create_table("sample")
    for key in range(500):
        with kernel.begin() as txn:
            txn.insert("sample", key, f"value-{key}")
    kernel.checkpoint()
    print(json.dumps({"dc": kernel.dc.stats(), "tc": kernel.tc.stats()}, indent=2))


def _experiments() -> None:
    rows = [
        ("FIG1", "architecture cost vs monolithic", "bench_fig1_architecture.py"),
        ("FIG2", "cloud movie site W1-W4, no 2PC", "bench_fig2_cloud.py"),
        ("E-LOCK", "fetch-ahead vs range partitions", "bench_range_locking.py"),
        ("E-OOO", "out-of-order execution / abLSNs", "bench_out_of_order.py"),
        ("E-SYNC", "page-sync strategies", "bench_page_sync.py"),
        ("E-SMO", "system-transaction logging", "bench_system_txn.py"),
        ("E-FAIL", "partial failures & reset modes", "bench_partial_failure.py"),
        ("E-MTC", "multiple TCs per DC", "bench_multi_tc.py"),
        ("E-CKPT", "contract termination", "bench_checkpoint.py"),
        ("E-SCALE", "independent instantiation", "bench_scaling.py"),
        ("ABLATE", "design-knob sweeps", "bench_ablation.py"),
        ("APP", "application throughput", "bench_applications.py"),
    ]
    width = max(len(row[0]) for row in rows)
    for exp_id, claim, bench in rows:
        print(f"{exp_id:<{width}}  {claim:<40}  benchmarks/{bench}")
    print("\nrun one:  pytest benchmarks/<file> -s")


def _trace(args: list[str]) -> int:
    from repro import KernelConfig, UnbundledKernel
    from repro.common.config import DcConfig
    from repro.obs import Tracer, latency_breakdown, write_chrome_trace
    from repro.workloads.ycsb import PRESETS, YcsbConfig, YcsbWorkload

    preset = (args[0] if args else "A").upper()
    if preset not in PRESETS:
        print(f"unknown YCSB preset {preset!r}; choose from {sorted(PRESETS)}")
        return 1
    out = args[1] if len(args) > 1 else f"trace_ycsb_{preset}.json"
    tracer = Tracer()
    kernel = UnbundledKernel(
        KernelConfig(dc=DcConfig(page_size=1024)), tracer=tracer
    )
    kernel.create_table("usertable")
    workload = YcsbWorkload(
        kernel.begin, config=YcsbConfig(preset=preset, keyspace=300, seed=7)
    )
    workload.load()
    stats = workload.run(400)
    path = write_chrome_trace(out, tracer)
    print(f"YCSB-{preset}: {stats.committed} committed, "
          f"{len(tracer.finished_spans())} spans")
    print(f"trace written to {path} "
          "(drag into https://ui.perfetto.dev or chrome://tracing)\n")
    print(latency_breakdown(tracer))
    latency = kernel.metrics.dist("tc.commit_latency_ms")
    if latency.count:
        print(f"\ncommit latency ms: p50={latency.percentile(0.5):.3f} "
              f"p95={latency.percentile(0.95):.3f} "
              f"p99={latency.percentile(0.99):.3f}  (n={latency.count})")
    return 0


def _explore(args: list[str]) -> int:
    import argparse
    import json

    from repro.sim.explore import (
        ExploreConfig,
        explore,
        load_artifact,
        minimize_failure,
        replay_artifact,
        save_artifact,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro explore",
        description="Explore transaction interleavings under a "
        "deterministic scheduler; judge each history with the "
        "serializability + recovery-ordering oracle.",
    )
    parser.add_argument("--schedules", type=int, default=200,
                        help="schedules per strategy/crash variant group")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--strategy", default="random,pct",
                        help="comma list of random|pct|rr")
    parser.add_argument("--crash", action="store_true",
                        help="also explore schedules with an injected "
                        "DC crash + interleaved recovery")
    parser.add_argument("--weaken-read-locks", action="store_true",
                        help="negative control: drop read locks and let "
                        "the oracle find the cycle")
    parser.add_argument("--cc", default="2pl",
                        help="comma list of 2pl|occ|mvcc; more than one "
                        "sweeps the policies round-robin")
    parser.add_argument("--skip-validation", action="store_true",
                        help="negative control: disable occ/mvcc "
                        "commit-time validation")
    parser.add_argument("--mvcc-read-newest", action="store_true",
                        help="negative control: mvcc reads newest bytes "
                        "instead of the snapshot")
    parser.add_argument("--txns", type=int, default=3)
    parser.add_argument("--ops", type=int, default=3)
    parser.add_argument("--keyspace", type=int, default=4)
    parser.add_argument("--out", default=None,
                        help="where to write a failing (seed, trace) "
                        "artifact [explore_failure_seed<N>.json]")
    parser.add_argument("--replay", default=None, metavar="ARTIFACT",
                        help="re-execute a saved failing artifact instead "
                        "of exploring")
    opts = parser.parse_args(args)

    if opts.replay is not None:
        outcome = replay_artifact(load_artifact(opts.replay))
        anomaly = outcome.report.anomaly()
        print(f"replayed seed={outcome.seed} strategy={outcome.strategy} "
              f"steps={outcome.steps}")
        print(f"anomaly: {anomaly or 'none — schedule is clean'}")
        return 0 if anomaly else 1  # a saved failure should reproduce

    policies = tuple(p.strip() for p in opts.cc.split(",") if p.strip())
    config = ExploreConfig(
        txns=opts.txns,
        ops_per_txn=opts.ops,
        keyspace=opts.keyspace,
        skip_read_locks=opts.weaken_read_locks,
        cc_policy=policies[0] if policies else "2pl",
        skip_validation=opts.skip_validation,
        mvcc_read_newest=opts.mvcc_read_newest,
    )
    strategies = tuple(s.strip() for s in opts.strategy.split(",") if s.strip())
    crash_modes = (False, True) if opts.crash else (False,)
    summary = explore(
        config,
        schedules=opts.schedules,
        strategies=strategies,
        crash_modes=crash_modes,
        cc_policies=policies if len(policies) > 1 else None,
        base_seed=opts.seed,
        stop_on_anomaly=True,
    )
    print(json.dumps(summary.to_dict(), indent=2))
    failure = summary.first_failure
    if failure is None:
        print(f"\nclean: {summary.explored} schedules, no anomalies")
        return 0
    print(f"\nANOMALY at seed={failure.seed} strategy={failure.strategy}: "
          f"{failure.anomaly}")
    artifact = minimize_failure(failure, summary.first_failure_config or config)
    out = opts.out or f"explore_failure_seed{failure.seed}.json"
    save_artifact(artifact, out)
    print(f"minimized to {len(artifact['trace'])} decisions "
          f"(from {len(failure.decisions)}); artifact: {out}")
    print(f"reproduce with: python -m repro explore --replay {out}")
    return 1


def _chaos(args: list[str]) -> int:
    import argparse
    import json

    from repro.common.config import ChannelConfig
    from repro.sim.chaos import ChaosRunner, ChaosViolation

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Seeded chaos run: random faults under a random "
        "workload, durability/atomicity/well-formedness checked after "
        "every heal.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--txns", type=int, default=250)
    parser.add_argument("--process", action="store_true",
                        help="DCs as real server processes; faults are "
                        "real kill -9 (see --kill-every)")
    parser.add_argument("--kill-every", type=int, default=0, metavar="N",
                        help="process mode: SIGKILL a random DC every N "
                        "transactions")
    parser.add_argument("--tc-process", action="store_true",
                        help="process mode: run the TC as its own server "
                        "process (durable log journal, §5.3.2 healing)")
    parser.add_argument("--kill-tc-every", type=int, default=0, metavar="N",
                        help="process mode: SIGKILL the TC process every "
                        "N transactions (implies --tc-process)")
    parser.add_argument("--tcp", action="store_true",
                        help="process mode: TC↔DC traffic over loopback "
                        "TCP (ephemeral ports, TCP_NODELAY) instead of "
                        "Unix sockets; implies --tc-process")
    parser.add_argument("--shm", action="store_true",
                        help="process mode: co-located links carry frames "
                        "over shared-memory rings (transport='shm'); "
                        "incompatible with --tcp")
    parser.add_argument("--cc", default="2pl", choices=("2pl", "occ", "mvcc"),
                        help="concurrency-control policy under chaos")
    parser.add_argument("--increment-rate", type=float, default=0.0,
                        metavar="R", help="rate of increment-canary ops "
                        "on the reserved slot (0 disables)")
    opts = parser.parse_args(args)

    if opts.shm and opts.tcp:
        parser.error("--shm is single-machine; it cannot combine with --tcp")
    kwargs: dict[str, object] = {"seed": opts.seed, "txns": opts.txns}
    if opts.cc != "2pl":
        from repro.common.config import TcConfig

        kwargs["tc_config"] = TcConfig(group_commit_size=1, cc_policy=opts.cc)
    if opts.increment_rate:
        kwargs["increment_rate"] = opts.increment_rate
    if opts.process:
        kwargs["channel_config"] = ChannelConfig(
            transport="shm" if opts.shm else "process",
            listen_host="127.0.0.1" if opts.tcp else "",
        )
        kwargs["kill_every"] = opts.kill_every or 25
        if opts.tc_process or opts.kill_tc_every or opts.tcp:
            kwargs["tc_processes"] = 1
            kwargs["kill_tc_every"] = opts.kill_tc_every
    elif opts.tc_process or opts.kill_tc_every or opts.tcp or opts.shm:
        parser.error(
            "--tc-process/--kill-tc-every/--tcp/--shm require --process"
        )
    runner = ChaosRunner(**kwargs)
    try:
        report = runner.run()
    except ChaosViolation as violation:
        print(f"INVARIANT VIOLATION\n{violation}")
        return 1
    finally:
        runner.kernel.close()
    print(json.dumps(report, indent=2))
    return 0


def _serve_tc(args: list[str]) -> int:
    import argparse

    from repro.common.config import TcConfig
    from repro.net.tcserver import serve_socket

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-tc",
        description="Serve one transactional component on a Unix socket. "
        "DCs are addressed by their own sockets (see RemoteDc "
        "listen_path); clients connect with RemoteTc(socket_path=...).",
    )
    parser.add_argument("--name", default="tc1")
    parser.add_argument("--tc-id", type=int, default=1)
    parser.add_argument("--listen", required=True, metavar="SOCK",
                        help="Unix socket path to serve on")
    parser.add_argument("--journal", required=True, metavar="PATH",
                        help="TC log journal (replayed on restart)")
    parser.add_argument("--dc", action="append", default=[],
                        metavar="NAME=SOCK", required=False,
                        help="a DC to attach, as name=socket_path "
                        "(repeatable)")
    parser.add_argument("--sharing-mode", default="",
                        choices=["", "read_committed", "dirty"])
    parser.add_argument("--max-sessions", type=int, default=0,
                        help="exit after N client sessions (0 = forever)")
    opts = parser.parse_args(args)
    dc_socks: dict[str, str] = {}
    for spec in opts.dc:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            parser.error(f"--dc expects NAME=SOCK, got {spec!r}")
        dc_socks[name] = path
    serve_socket(
        opts.listen,
        opts.name,
        opts.tc_id,
        TcConfig.optimized(),
        opts.journal,
        dc_socks,
        sharing_mode=opts.sharing_mode,
        max_sessions=opts.max_sessions,
    )
    return 0


def main(argv: list[str]) -> int:
    commands = {"demo": _demo, "stats": _stats, "experiments": _experiments}
    if argv and argv[0] == "trace":
        return _trace(argv[1:])
    if argv and argv[0] == "explore":
        return _explore(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos(argv[1:])
    if argv and argv[0] == "serve-tc":
        return _serve_tc(argv[1:])
    if len(argv) != 1 or argv[0] not in commands:
        print(__doc__)
        return 1
    commands[argv[0]]()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
