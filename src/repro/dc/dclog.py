"""The DC log: recovery for system transactions (Section 5.2.2).

Structure modifications (page splits, deletes/consolidations, root changes)
are *system transactions* — atomic actions internal to the DC, unrelated to
any user transaction the TC knows about.  They get their own log with their
own LSN space (*dLSNs*) so that at restart the DC can restore well-formed
search structures before any TC redo arrives, replaying SMOs out of their
original execution order relative to TC operations.

Record types follow the paper's prescriptions:

- :class:`PageImageRecord` — *physical*: a complete page image carrying its
  abLSN(s).  Used for the new page of a split ("the log record for the new
  page contains the actual contents of the page"), for the consolidated
  page of a delete (whose abLSN is the merge/max of the two inputs, pinning
  the delete's position w.r.t. TC operations on that key range), and for
  updated index (inner) pages.
- :class:`KeysRemovedRecord` — *logical*: the pre-split page "need only
  capture the split key value"; whatever version of the page is stable, its
  own abLSN remains valid.
- :class:`PageFreeRecord` — logical: the deleted page returns to free space.
- :class:`RootChangedRecord` — the table's root moved (root split or
  collapse); replayed so the catalog is well-formed before TC redo.

The log is **forced at system-transaction commit** and records of
uncommitted system transactions never reach stable storage (the buffer
manager flushes no page while an SMO holds its latches), so redo-only
recovery of the DC log is sufficient — the force-at-commit discipline
replaces the undo pass of integrated multi-level recovery.  DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.common.lsn import Lsn, NULL_LSN, LsnGenerator
from repro.common.records import Key, sizeof_key
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import PageImage


@dataclass(frozen=True)
class DcLogRecord:
    dlsn: Lsn

    def encoded_size(self) -> int:
        return 24  # header: dlsn + type + length


@dataclass(frozen=True)
class PageImageRecord(DcLogRecord):
    """Physical redo: install ``image`` if the page's dLSN is older."""

    page_id: int = 0
    image: Optional[PageImage] = None

    def encoded_size(self) -> int:
        image_bytes = self.image.encoded_size() if self.image is not None else 0
        return super().encoded_size() + 8 + image_bytes


@dataclass(frozen=True)
class KeysRemovedRecord(DcLogRecord):
    """Logical redo: remove keys >= split_key from the pre-split page."""

    page_id: int = 0
    split_key: Key = None

    def encoded_size(self) -> int:
        return super().encoded_size() + 8 + sizeof_key(self.split_key)


@dataclass(frozen=True)
class PageFreeRecord(DcLogRecord):
    """Logical redo: the page is no longer part of any structure."""

    page_id: int = 0

    def encoded_size(self) -> int:
        return super().encoded_size() + 8


@dataclass(frozen=True)
class RootChangedRecord(DcLogRecord):
    table: str = ""
    new_root: int = 0

    def encoded_size(self) -> int:
        return super().encoded_size() + sizeof_key(self.table) + 8


@dataclass(frozen=True)
class CatalogRecord(DcLogRecord):
    """A table was created: its descriptor metadata, replayed at recovery."""

    descriptor: Optional[dict] = None

    def encoded_size(self) -> int:
        return super().encoded_size() + 64


@dataclass(frozen=True)
class SysTxnCommitRecord(DcLogRecord):
    """Marks the end of a system transaction's record group."""

    kind: str = ""


class DcLog:
    """dLSN allocation plus the force-at-commit stable log.

    A system transaction accumulates records via :meth:`stage` and calls
    :meth:`commit` to force them to stable storage as one atomic batch
    (closed by a :class:`SysTxnCommitRecord`).  :meth:`abandon` drops the
    staged batch — nothing of it ever becomes stable.
    """

    def __init__(self, storage: StableStorage, metrics: Optional[Metrics] = None) -> None:
        self._storage = storage
        self._dlsns = LsnGenerator()
        self._lock = threading.Lock()
        self.metrics = metrics or Metrics()
        #: Installed by the owning DC so system-transaction commits are a
        #: fault hook point (crash "between the split halves": the staged
        #: records exist in memory but nothing is stable yet).
        self.faults = None
        self.owner = ""

    def next_dlsn(self) -> Lsn:
        return self._dlsns.next()

    @property
    def last_dlsn(self) -> Lsn:
        return self._dlsns.last

    def advance_past(self, dlsn: Lsn) -> None:
        self._dlsns.advance_to(dlsn)

    def commit(self, kind: str, records: list[DcLogRecord]) -> None:
        """Force the system transaction's records to the stable DC log."""
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DC_SYSTXN, self.owner)
        with self._lock:
            batch: list[DcLogRecord] = list(records)
            batch.append(SysTxnCommitRecord(dlsn=self.next_dlsn(), kind=kind))
            self._storage.append_dc_log(batch)
            self.metrics.incr("dclog.systxn_commits")
            self.metrics.incr("dclog.records", len(batch))
            self.metrics.incr(
                "dclog.bytes", sum(record.encoded_size() for record in batch)
            )

    def stable_records(self) -> list[DcLogRecord]:
        return [
            record
            for record in self._storage.dc_log_entries()
            if isinstance(record, DcLogRecord)
        ]

    def truncate_before(self, dlsn: Lsn) -> None:
        self._storage.truncate_dc_log(dlsn)
