"""The Data Component: physical data management without transactions.

A DC serves record-oriented logical operations atomically and
idempotently, maintains access methods (B-trees) behind the scenes using
system transactions, manages its page cache, and recovers its structures to
well-formed-ness *before* accepting the TC's logical redo (Section 4.1.2,
5.2, 5.3).
"""

from repro.dc.data_component import DataComponent

__all__ = ["DataComponent"]
