"""System transactions: atomic, recoverable structure modifications.

A system transaction (Section 5.2) is a DC-internal atomic action — a page
split, a page delete/consolidate, a root change — completely unrelated to
any user transaction.  It runs under latches, stages DC-log records, and
commits by forcing them to the stable DC log as one batch.

**Causality gate.**  A physically-logged page image carries record state
produced by TC operations.  If such an image reached the *stable* DC log
while some of those operations were still only on the TC's *volatile* log,
a later TC crash would leave stable DC state reflecting operations that are
lost forever — violating the causality contract of Section 4.2.  We
therefore gate every staged page image: before commit, the system
transaction demands that each involved TC's end-of-stable-log (EOSL) cover
the image's abLSN.  The DC satisfies the demand through a *log-force
prompt* to the TC (the paper explicitly allows the DC to "spontaneously
convey information to TC", Section 4.2.1).  The number of forced syncs is a
measured cost of unbundling (experiment E-SMO).

The gate only applies to images of pages carrying TC data; the pre-split
page is logged *logically* (split key only) precisely so its possibly
TC-unstable content never enters the DC log — the paper's design choice,
which the gate shows to be load-bearing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import WriteAheadViolation
from repro.common.lsn import Lsn, NULL_LSN
from repro.dc.dclog import (
    CatalogRecord,
    DcLog,
    DcLogRecord,
    KeysRemovedRecord,
    PageFreeRecord,
    PageImageRecord,
    RootChangedRecord,
)
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint
from repro.storage.page import Page, PageImage, PageKind

#: Callback the DC installs so a system transaction can demand log forcing:
#: ``ensure_stable({tc_id: lsn, ...})`` returns True once every TC's EOSL
#: covers the given LSN (typically by prompting the TC to force its log).
StabilityProvider = Callable[[dict[int, Lsn]], bool]


class SystemTransaction:
    """Stages DC-log records for one SMO and commits them atomically."""

    def __init__(
        self,
        kind: str,
        dclog: DcLog,
        metrics: Metrics,
        ensure_stable: Optional[StabilityProvider] = None,
    ) -> None:
        self.kind = kind
        self._dclog = dclog
        self._metrics = metrics
        # Picked up from the owning DC's log so call sites (btree, heap,
        # catalog) need no signature change.
        self._tracer = getattr(dclog, "tracer", NULL_TRACER)
        self._ensure_stable = ensure_stable
        self._records: list[DcLogRecord] = []
        self._committed = False

    # -- staging -----------------------------------------------------------

    def log_page_image(self, page: Page) -> Lsn:
        """Stage a physical page-image record; returns its dLSN.

        The image is captured *now* (under the caller's latches) and the
        page's own dLSN is advanced so the record is idempotent at replay.
        Leaf images are causality-gated at commit.
        """
        dlsn = self._dclog.next_dlsn()
        page.dlsn = dlsn
        image = page.snapshot()
        self._records.append(
            PageImageRecord(dlsn=dlsn, page_id=page.page_id, image=image)
        )
        return dlsn

    def log_keys_removed(self, page: Page, split_key: object) -> Lsn:
        """Stage the logical pre-split record: only the split key."""
        dlsn = self._dclog.next_dlsn()
        page.dlsn = dlsn
        self._records.append(
            KeysRemovedRecord(dlsn=dlsn, page_id=page.page_id, split_key=split_key)
        )
        return dlsn

    def log_page_free(self, page_id: int) -> Lsn:
        dlsn = self._dclog.next_dlsn()
        self._records.append(PageFreeRecord(dlsn=dlsn, page_id=page_id))
        return dlsn

    def log_root_changed(self, table: str, new_root: int) -> Lsn:
        dlsn = self._dclog.next_dlsn()
        self._records.append(
            RootChangedRecord(dlsn=dlsn, table=table, new_root=new_root)
        )
        return dlsn

    def log_catalog(self, descriptor_meta: dict) -> Lsn:
        dlsn = self._dclog.next_dlsn()
        self._records.append(CatalogRecord(dlsn=dlsn, descriptor=descriptor_meta))
        return dlsn

    # -- commit -------------------------------------------------------------

    def _stability_requirements(self) -> dict[int, Lsn]:
        """Per-TC max operation LSN embedded in staged leaf images."""
        needed: dict[int, Lsn] = {}
        for record in self._records:
            if not isinstance(record, PageImageRecord):
                continue
            image = record.image
            if image is None or image.kind is not PageKind.LEAF:
                continue
            for tc_id, ablsn in image.ablsns.items():
                top = ablsn.max_lsn()
                if top > needed.get(tc_id, NULL_LSN):
                    needed[tc_id] = top
        return needed

    def commit(self) -> None:
        """Gate on causality, then force the batch to the stable DC log."""
        if not self._tracer.enabled:
            return self._commit()
        with self._tracer.span(
            "dc.systxn", component="dc", kind=self.kind, records=len(self._records)
        ):
            return self._commit()

    def _commit(self) -> None:
        if self._committed:
            raise RuntimeError("system transaction already committed")
        if _sched.ACTIVE is not None:
            # Usually reached under a structure latch, where the critical-
            # section depth makes this record-only; it parks only for
            # latch-free commits (e.g. table creation).
            _sched.maybe_yield(
                YieldPoint.DC_SYSTXN, self.kind, records=len(self._records)
            )
        needed = self._stability_requirements()
        if needed:
            if self._ensure_stable is None:
                raise WriteAheadViolation(
                    f"system transaction {self.kind!r} embeds TC operations "
                    f"{needed} but no stability provider is installed"
                )
            self._metrics.incr("systxn.stability_checks")
            if not self._ensure_stable(needed):
                raise WriteAheadViolation(
                    f"system transaction {self.kind!r} could not make TC "
                    f"operations stable: {needed}"
                )
        self._dclog.commit(self.kind, self._records)
        self._metrics.incr(f"systxn.{self.kind}")
        self._committed = True

    @property
    def committed(self) -> bool:
        return self._committed
