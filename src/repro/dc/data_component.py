"""The Data Component: a transaction-oblivious record server (Section 4.1.2).

A DC hosts tables (B-trees or fixed-page heaps), executes logical
operations atomically and idempotently, manages its cache, and recovers its
own structures.  It never learns about user transactions: it cannot tell a
forward operation from an inverse submitted during rollback, and it tracks
TCs only through request ids (LSNs) and per-TC abLSNs.

Idempotence (Section 5.1): each mutating request carries the TC-log LSN as
its unique id; before applying, the DC tests ``op LSN <= page abLSN`` with
the generalized containment test, so resends and redo-time replays execute
exactly once even under out-of-order delivery.

Mutations sent by a correct TC always succeed: the TC validates existence
under its own locks before logging and sending (see
:mod:`repro.tc.transactional_component`), which is what makes logged undo
information complete — a requirement for sound crash rollback.  The DC
still reports duplicate/not-found statuses defensively.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.sim.faults import FaultInjector

from repro.common.api import (
    BatchedPerform,
    BatchedReply,
    CheckpointReply,
    CheckpointRequest,
    ControlAck,
    EndOfStableLog,
    LowWaterMark,
    Message,
    OperationReply,
    PerformOperation,
    RedoComplete,
    RestartBegin,
    WatermarkReply,
    WatermarkRequest,
)
from repro.common.config import DcConfig
from repro.common.errors import (
    CrashedError,
    PageOverflowError,
    ReproError,
    UnknownTableError,
)
from repro.common.lsn import Lsn, NULL_LSN
from repro.common.ops import (
    DeleteOp,
    DiscardVersionsOp,
    IncrementOp,
    InsertOp,
    LogicalOperation,
    OpResult,
    ProbeNextKeysOp,
    PromoteVersionsOp,
    RangeReadOp,
    ReadFlavor,
    ReadOp,
    UpdateOp,
)
from repro.common.records import RecordView, TOMBSTONE, VersionedRecord
from repro.dc.dclog import DcLog
from repro.dc.recovery import DcRecoveryManager, TableDescriptor
from repro.dc.system_txn import SystemTransaction
from repro.obs.tracing import NULL_TRACER
from repro.sim import schedule as _sched
from repro.sim.metrics import Metrics
from repro.sim.schedule import YieldPoint
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool, ResetMode
from repro.storage.disk import StableStorage
from repro.storage.heap import HashedHeap
from repro.storage.page import LeafPage

Structure = Union[BTree, HashedHeap]


@dataclass
class TableHandle:
    descriptor: TableDescriptor
    structure: Structure


class DataComponent:
    """One DC instance: tables + cache + DC log on one stable volume."""

    def __init__(
        self,
        name: str = "dc",
        config: Optional[DcConfig] = None,
        metrics: Optional[Metrics] = None,
        storage: Optional[StableStorage] = None,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.name = name
        self.config = config or DcConfig()
        self.metrics = metrics or Metrics()
        self.storage = storage or StableStorage(self.metrics)
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if (
            not self.tracer.enabled
            and type(self).perform_operation is DataComponent.perform_operation
        ):
            # No tracing: operations dispatch straight to the untraced body
            # (skipped when a subclass overrides perform_operation).
            self.perform_operation = self._perform_operation
        self.storage.tracer = self.tracer
        if faults is not None:
            faults.register_component(self.name, "dc", self.crash)
            self.storage.bind_faults(faults, self.name)
        self.dclog = DcLog(self.storage, self.metrics)
        self.dclog.tracer = self.tracer
        if faults is not None:
            self.dclog.faults = faults
            self.dclog.owner = self.name
        #: Crash listeners installed by the supervisor: fn(name, kind).
        self.on_crash: list[Callable[[str, str], None]] = []
        self.recovery = DcRecoveryManager(self.storage, self.metrics)
        self.buffer = BufferPool(
            self.storage,
            self.config,
            self.metrics,
            loader=self.recovery.load_page,
            tracer=self.tracer,
        )
        self._tables: dict[str, TableHandle] = {}
        self._admin_lock = threading.RLock()
        self._crashed = False
        #: Snapshot extension: DC-local commit sequence clock.  One value
        #: is assigned per promote operation, so every version installed
        #: by one transaction's cleanup shares a sequence — snapshots are
        #: transaction-consistent per DC.
        self._version_clock = 0
        #: Per-TC callbacks for the causality gate (force the TC log
        #: through a given LSN) and the out-of-band restart prompt.
        self._force_log: dict[int, Callable[[Lsn], Lsn]] = {}
        self._restart_prompt: dict[int, Callable[["DataComponent"], None]] = {}
        #: Spontaneous contract termination (Section 4.2.1: the DC "could
        #: spontaneously inform TC that the RSSP can advance").
        self._rssp_hint: dict[int, Callable[[str, Lsn], None]] = {}
        #: TCs whose redo streams this (restarted) DC is still waiting on.
        #: While a TC is pending, its ordinary data operations bounce and
        #: its LWM advances are dropped — see :meth:`handle`.
        self._redo_pending: set[int] = set()
        #: Bumped on every crash.  A request dispatched against one
        #: incarnation must not complete against the next: in a real
        #: process the crash kills its thread, so the simulated DC refuses
        #: any in-flight operation that straddled a crash/recover.
        self._incarnation = 0
        #: Plug-in access methods (Section 1.1 extensibility):
        #: kind -> factory(dc, name, descriptor_or_None) -> structure.
        #: Called with descriptor=None to create a fresh table, or with the
        #: recovered TableDescriptor to rebuild one at restart.
        self._structure_factories: dict[
            str, Callable[["DataComponent", str, Optional[TableDescriptor]], object]
        ] = {}
        # Hot-path counter slots, bound once (see Metrics.counter).
        self._ops_slot = self.metrics.counter("dc.operations")
        self._batches_slot = self.metrics.counter("dc.batches_received")
        self._latches_slot = self.metrics.counter("dc.latches")

    # -- TC registration -----------------------------------------------------

    def register_tc(
        self,
        tc_id: int,
        force_log: Optional[Callable[[Lsn], Lsn]] = None,
        on_dc_restart: Optional[Callable[["DataComponent"], None]] = None,
        on_rssp_hint: Optional[Callable[[str, Lsn], None]] = None,
    ) -> None:
        """Attach a TC: install its log-force, restart and hint hooks."""
        with self._admin_lock:
            if force_log is not None:
                self._force_log[tc_id] = force_log
            if on_dc_restart is not None:
                self._restart_prompt[tc_id] = on_dc_restart
            if on_rssp_hint is not None:
                self._rssp_hint[tc_id] = on_rssp_hint

    def unregister_tc(self, tc_id: int) -> None:
        with self._admin_lock:
            self._force_log.pop(tc_id, None)
            self._restart_prompt.pop(tc_id, None)

    def _ensure_tc_stable(self, needed: dict[int, Lsn]) -> bool:
        """Causality gate for system transactions (see dc/system_txn.py).

        For each TC whose operations a staged page image embeds, make sure
        the TC's stable log covers them — prompting the TC to force its log
        when it does not.
        """
        for tc_id, lsn in needed.items():
            if self.buffer.eosl_for(tc_id) >= lsn:
                continue
            force = self._force_log.get(tc_id)
            if force is None:
                return False
            self.metrics.incr("dc.log_force_prompts")
            eosl = force(lsn)
            self.buffer.note_eosl(tc_id, eosl)
            if eosl < lsn:
                return False
        return True

    # -- administration ------------------------------------------------------------

    def register_structure_kind(
        self,
        kind: str,
        factory: Callable[["DataComponent", str, Optional[TableDescriptor]], object],
    ) -> None:
        """Register a custom access method (Section 1.1, imperative 5).

        The factory is called with ``descriptor=None`` to create a fresh
        table (it must durably log its own pages via a system transaction
        and may expose ``describe() -> dict`` whose result is persisted in
        the catalog), and with the recovered descriptor at DC restart to
        rebuild the structure.  The returned object must implement the
        structure duck-type (find_leaf / ensure_room / maybe_consolidate /
        get_record / iter_range / next_keys / validate / latch ...).
        """
        with self._admin_lock:
            self._structure_factories[kind] = factory

    def create_table(
        self,
        name: str,
        kind: str = "btree",
        versioned: bool = False,
        bucket_count: int = 16,
    ) -> None:
        """Create a table; its descriptor is durably logged (CatalogRecord)."""
        self._check_up()
        with self._admin_lock:
            if name in self._tables:
                raise ReproError(f"table {name!r} already exists")
            descriptor = TableDescriptor(name=name, kind=kind, versioned=versioned)
            if kind in self._structure_factories:
                structure = self._structure_factories[kind](self, name, None)
                describe = getattr(structure, "describe", None)
                if callable(describe):
                    descriptor.extra = dict(describe())
            else:
                structure = self._build_structure(
                    name, kind, bucket_count, root_id=None
                )
                if kind == "btree":
                    descriptor.root_id = structure.root_id  # type: ignore[union-attr]
                else:
                    descriptor.bucket_ids = list(structure.bucket_ids)  # type: ignore[union-attr]
            txn = SystemTransaction("catalog", self.dclog, self.metrics, None)
            txn.log_catalog(descriptor.to_metadata())
            txn.commit()
            self._tables[name] = TableHandle(descriptor, structure)

    def _build_structure(
        self, name: str, kind: str, bucket_count: int, root_id: Optional[int]
    ) -> Structure:
        if kind == "btree":
            return BTree(
                name,
                self.storage,
                self.buffer,
                self.dclog,
                self.config,
                self.metrics,
                ensure_stable=self._ensure_tc_stable,
                root_id=root_id,
            )
        if kind == "heap":
            return HashedHeap(
                name,
                self.storage,
                self.buffer,
                self.dclog,
                self.config,
                self.metrics,
                ensure_stable=self._ensure_tc_stable,
                bucket_count=bucket_count,
            )
        raise ReproError(f"unknown table kind {kind!r}")

    def table(self, name: str) -> TableHandle:
        handle = self._tables.get(name)
        if handle is None:
            raise UnknownTableError(name)
        return handle

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def _check_up(self) -> None:
        if self._crashed:
            raise CrashedError(f"DC {self.name}")

    # -- the Section 4.2.1 API: message entry point -----------------------------------

    def handle(self, message: Message) -> Optional[Message]:
        """Transport-level dispatch used by :mod:`repro.net.channel`."""
        self._check_up()
        if isinstance(message, RedoComplete):
            # Idempotent: a duplicate close of an already-closed window acks.
            self._redo_pending.discard(message.tc_id)
            return ControlAck(tc_id=message.tc_id)
        if message.tc_id in self._redo_pending:
            # Recovery ordering (Section 5.2.2): structures are well-formed
            # but record state is still being rebuilt by this TC's redo
            # stream.  An ordinary operation validated against that partial
            # state would see committed records as absent (and a definitive
            # rejection logged from it would diverge from repeat history),
            # and a pre-crash LWM would falsely mark unreplayed operations
            # as contained in rebuilt pages.  Bounce data traffic, drop LWM
            # advances; redo-stream traffic and other control flows pass.
            if isinstance(
                message, (PerformOperation, BatchedPerform)
            ) and not getattr(message, "redo", False):
                self.metrics.incr("dc.bounced_in_redo_window")
                raise CrashedError(
                    f"DC {self.name} awaiting redo from TC {message.tc_id}"
                )
            if isinstance(message, LowWaterMark):
                self.metrics.incr("dc.lwm_dropped_in_redo_window")
                return None
            if isinstance(message, CheckpointRequest):
                # A freshly-recovered DC trivially has zero dirty pages,
                # but "flushed" means nothing while committed operations
                # are still in flight on this TC's redo stream: granting
                # would advance the RSSP past them, and with log
                # truncation that loss becomes permanent.  Refuse; the TC
                # retries its checkpoint after the window closes.
                self.metrics.incr("dc.checkpoint_refused_in_redo_window")
                return CheckpointReply(tc_id=message.tc_id, granted_rssp=NULL_LSN)
        if isinstance(message, PerformOperation):
            assert message.op is not None
            if message.eosl:
                self.buffer.note_eosl(message.tc_id, message.eosl)
            result = self.perform_operation(
                message.tc_id, message.op_id, message.op, resend=message.resend
            )
            return OperationReply(
                tc_id=message.tc_id, op_id=message.op_id, result=result
            )
        if isinstance(message, BatchedPerform):
            return self._handle_batch(message)
        if isinstance(message, EndOfStableLog):
            self.end_of_stable_log(message.tc_id, message.eosl)
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, LowWaterMark):
            self.low_water_mark(message.tc_id, message.lwm)
            return None
        if isinstance(message, CheckpointRequest):
            granted = self.checkpoint(message.tc_id, message.new_rssp)
            return CheckpointReply(tc_id=message.tc_id, granted_rssp=granted)
        if isinstance(message, RestartBegin):
            self.begin_restart(
                message.tc_id, message.stable_lsn, ResetMode(message.reset_mode)
            )
            return ControlAck(tc_id=message.tc_id)
        if isinstance(message, WatermarkRequest):
            return WatermarkReply(
                tc_id=message.tc_id,
                watermark=self._version_clock,
                floor=self.snapshot_floor(),
            )
        raise ReproError(f"DC {self.name}: unhandled message {message!r}")

    def _handle_batch(self, message: BatchedPerform) -> BatchedReply:
        """Unpack a :class:`BatchedPerform` envelope and execute per-op.

        Each enclosed operation runs through the exact same
        :meth:`perform_operation` path (same abLSN idempotence test, same
        per-op reply) as an unbatched request — the envelope only saves
        wire trips.  An injected crash mid-envelope escapes as
        ``CrashedError``; the channel turns that into a lost message and
        the TC resends the whole envelope, which per-op idempotence
        absorbs.
        """
        self._batches_slot.value += 1
        if message.eosl:
            self.buffer.note_eosl(message.tc_id, message.eosl)
        bound = self.__dict__.get("perform_operation")
        if getattr(bound, "__func__", None) is DataComponent._perform_operation:
            # Untraced, un-overridden dispatch: run the envelope through the
            # lean loop that amortizes the table lookup, buffer bracket and
            # structure latch over runs of same-table operations.  Each
            # operation still gets the identical abLSN test, per-op result
            # and per-op reply — only fixed-cost brackets are shared.
            return self._execute_batch(message)
        with self.tracer.span(
            "dc.batch", component=self.name, ops=len(message.ops)
        ):
            replies = tuple(
                OperationReply(
                    tc_id=sub.tc_id,
                    op_id=sub.op_id,
                    result=self.perform_operation(
                        sub.tc_id, sub.op_id, sub.op, resend=sub.resend
                    ),
                )
                for sub in message.ops
            )
        return BatchedReply(tc_id=message.tc_id, replies=replies)

    def _execute_batch(self, message: BatchedPerform) -> BatchedReply:
        """Envelope execution with per-table amortization of fixed costs.

        Exactly :meth:`_perform_operation` per enclosed op, except the
        ``buffer.operation()`` bracket and the structure latch are taken
        once per run of consecutive same-table operations instead of once
        per op.  Holding them across a run is safe: the bracket only
        defers eviction, and the structure latch is what every single-op
        path holds for its whole mutation anyway — a longer hold changes
        contention, never correctness.  ``CrashedError`` escapes exactly
        as in the single-op path (the channel reports a lost message).
        """
        ops = message.ops
        replies: list[OperationReply] = []
        index, total = 0, len(ops)
        incarnation = self._incarnation
        while index < total:
            self._check_up()
            if incarnation != self._incarnation:
                self.metrics.incr("dc.stale_incarnation_ops")
                raise CrashedError(f"DC {self.name} restarted mid-request")
            sub = ops[index]
            table = sub.op.table
            handle = self._tables.get(table)
            if handle is None:
                self._ops_slot.value += 1
                replies.append(
                    OperationReply(
                        tc_id=sub.tc_id,
                        op_id=sub.op_id,
                        result=OpResult.error(str(UnknownTableError(table))),
                    )
                )
                index += 1
                continue
            with self.buffer.operation(), handle.structure.latch:
                while index < total and ops[index].op.table == table:
                    sub = ops[index]
                    self._ops_slot.value += 1
                    if sub.resend:
                        self.metrics.incr("dc.resends_received")
                    try:
                        if sub.op.MUTATES:
                            result = self._apply_mutation(
                                handle, sub.tc_id, sub.op_id, sub.op
                            )
                        else:
                            result = self._execute_read(handle, sub.tc_id, sub.op)
                    except CrashedError:
                        raise
                    except (PageOverflowError, ReproError) as exc:
                        result = OpResult.error(str(exc))
                    replies.append(
                        OperationReply(
                            tc_id=sub.tc_id, op_id=sub.op_id, result=result
                        )
                    )
                    index += 1
        return BatchedReply(tc_id=message.tc_id, replies=replies)

    # -- perform_operation ---------------------------------------------------------------

    def perform_operation(
        self, tc_id: int, op_id: Lsn, op: LogicalOperation, resend: bool = False
    ) -> OpResult:
        with self.tracer.span(
            "dc.execute",
            component=self.name,
            request_id=op_id,
            op=type(op).__name__,
            op_id=op_id,
            resend=resend,
        ):
            return self._perform_operation(tc_id, op_id, op, resend)

    def _perform_operation(
        self, tc_id: int, op_id: Lsn, op: LogicalOperation, resend: bool = False
    ) -> OpResult:
        self._check_up()
        incarnation = self._incarnation
        self._ops_slot.value += 1
        if resend:
            self.metrics.incr("dc.resends_received")
        try:
            handle = self.table(op.table)
        except UnknownTableError as exc:
            return OpResult.error(str(exc))
        structure = handle.structure
        if _sched.ACTIVE is not None:
            # The yield sits *before* the latch bracket: inside it the task
            # is in a critical section and must not park (see sim.schedule).
            _sched.maybe_yield(
                YieldPoint.BUFFER_LATCH, self.name, op=type(op).__name__
            )
        if incarnation != self._incarnation:
            # The DC crashed while this request was in flight; its thread
            # died with the old incarnation.  Surface as a lost message —
            # validating against rebuilt (possibly not-yet-redone) state
            # would produce a divergent answer.
            self.metrics.incr("dc.stale_incarnation_ops")
            raise CrashedError(f"DC {self.name} restarted mid-request")
        with self.buffer.operation(), structure.latch:
            try:
                if op.MUTATES:
                    return self._apply_mutation(handle, tc_id, op_id, op)
                return self._execute_read(handle, tc_id, op)
            except CrashedError:
                # an injected fault crashed a component mid-operation; the
                # channel surfaces it as a lost message, never as a result
                raise
            except PageOverflowError as exc:
                return OpResult.error(str(exc))
            except ReproError as exc:
                return OpResult.error(str(exc))

    # -- mutations ---------------------------------------------------------------------------

    def _apply_mutation(
        self, handle: TableHandle, tc_id: int, op_id: Lsn, op: LogicalOperation
    ) -> OpResult:
        if _sched.ACTIVE is not None:
            _sched.note_event(
                "dc.apply",
                self.name,
                op=type(op).__name__,
                table=op.table,
                key=getattr(op, "key", None),
            )
        if isinstance(op, (PromoteVersionsOp, DiscardVersionsOp)):
            return self._apply_version_cleanup(handle, tc_id, op_id, op)
        structure = handle.structure
        leaf = structure.find_leaf(op.key)  # type: ignore[union-attr]
        if op_id and leaf.ablsn_for(tc_id).contains(op_id):
            # Exactly-once: already reflected (a resend or a redo replay).
            self.metrics.incr("dc.duplicate_ops")
            return OpResult.okay()
        versioned = handle.descriptor.versioned or getattr(op, "versioned", False)
        if isinstance(op, InsertOp):
            result, final_leaf = self._apply_insert(
                handle, tc_id, op, versioned, leaf, op_id
            )
        elif isinstance(op, UpdateOp):
            result, final_leaf = self._apply_update(
                handle, tc_id, op, versioned, leaf, op_id
            )
        elif isinstance(op, DeleteOp):
            result, final_leaf = self._apply_delete(
                handle, tc_id, op, versioned, leaf, op_id
            )
        elif isinstance(op, IncrementOp):
            result, final_leaf = self._apply_increment(
                handle, tc_id, op, versioned, leaf, op_id
            )
        else:
            return OpResult.error(f"unknown mutation {type(op).__name__}")
        if result.ok and isinstance(op, DeleteOp) and not versioned:
            structure.maybe_consolidate(op.key)
        return result

    def _mutate_record(
        self,
        handle: TableHandle,
        tc_id: int,
        key: object,
        mutate: Callable[[Optional[VersionedRecord]], Optional[VersionedRecord]],
        leaf: Optional[LeafPage] = None,
        op_id: Lsn = 0,
        outcome: Optional[dict[str, OpResult]] = None,
    ) -> tuple[Optional[VersionedRecord], LeafPage]:
        """Apply ``mutate`` to the record slot, splitting for space as needed.

        ``leaf`` lets the caller reuse a descent it already made; the
        structure latch held around every mutation keeps it valid.  When the
        caller passes ``op_id`` + ``outcome``, a successful mutation's LSN
        is folded into the leaf's abLSN inside the same latch bracket (the
        exactly-once bookkeeping, saved a second latch acquisition).
        Returns ``(new_record_or_None, leaf_finally_holding_the_slot)``.
        """
        structure = handle.structure
        if leaf is None:
            leaf = structure.find_leaf(key)
        with leaf.latch:
            self._latches_slot.value += 1
            old = leaf.get(key)
            new = mutate(old.clone() if old is not None else None)
            if new is None:
                if old is not None:
                    leaf.remove(key)
                    if op_id and outcome is not None and outcome["result"].ok:
                        leaf.ablsn_for(tc_id).include(op_id)
                return None, leaf
            # owner_tc is set by the mutators on *successful* changes only,
            # so a rejected operation never reassigns another TC's record
            delta = new.encoded_size() - (old.encoded_size() if old is not None else 0)
            if leaf.fits(delta, self.config.page_size):
                leaf.put(new, delta)
                if op_id and outcome is not None and outcome["result"].ok:
                    leaf.ablsn_for(tc_id).include(op_id)
                return new, leaf
        # Overflow: split (a system transaction), then retry on the new leaf.
        leaf = structure.ensure_room(key, delta)
        with leaf.latch:
            self._latches_slot.value += 1
            leaf.put(new)
            if op_id and outcome is not None and outcome["result"].ok:
                leaf.ablsn_for(tc_id).include(op_id)
            return new, leaf

    def _apply_insert(
        self, handle: TableHandle, tc_id: int, op: InsertOp, versioned: bool,
        leaf: Optional[LeafPage] = None,
        op_id: Lsn = 0,
    ) -> tuple[OpResult, LeafPage]:
        outcome: dict[str, OpResult] = {}

        def mutate(old: Optional[VersionedRecord]) -> Optional[VersionedRecord]:
            if old is not None and old.exists_for(read_committed=False):
                outcome["result"] = OpResult.duplicate(
                    f"key {op.key!r} already exists in {op.table!r}"
                )
                return old
            record = old if old is not None else VersionedRecord(key=op.key)
            if versioned:
                # "insert two versions, a before 'null' version followed by
                # the intended insert" (Section 6.2.2).
                record.set_pending(op.value)
            else:
                record.committed = op.value
            record.owner_tc = tc_id
            outcome["result"] = OpResult.okay()
            return record

        _record, leaf = self._mutate_record(
            handle, tc_id, op.key, mutate, leaf, op_id, outcome
        )
        return outcome["result"], leaf

    def _apply_update(
        self, handle: TableHandle, tc_id: int, op: UpdateOp, versioned: bool,
        leaf: Optional[LeafPage] = None,
        op_id: Lsn = 0,
    ) -> tuple[OpResult, LeafPage]:
        outcome: dict[str, OpResult] = {}

        def mutate(old: Optional[VersionedRecord]) -> Optional[VersionedRecord]:
            if old is None or not old.exists_for(read_committed=False):
                outcome["result"] = OpResult.not_found(
                    f"no record {op.key!r} in {op.table!r}"
                )
                return old
            prior = old.visible_value(read_committed=False)
            if versioned:
                old.set_pending(op.value)
            else:
                old.committed = op.value
            old.owner_tc = tc_id
            outcome["result"] = OpResult.okay(prior=prior)
            return old

        _record, leaf = self._mutate_record(
            handle, tc_id, op.key, mutate, leaf, op_id, outcome
        )
        return outcome["result"], leaf

    def _apply_delete(
        self, handle: TableHandle, tc_id: int, op: DeleteOp, versioned: bool,
        leaf: Optional[LeafPage] = None,
        op_id: Lsn = 0,
    ) -> tuple[OpResult, LeafPage]:
        outcome: dict[str, OpResult] = {}

        def mutate(old: Optional[VersionedRecord]) -> Optional[VersionedRecord]:
            if old is None or not old.exists_for(read_committed=False):
                outcome["result"] = OpResult.not_found(
                    f"no record {op.key!r} in {op.table!r}"
                )
                return old
            prior = old.visible_value(read_committed=False)
            outcome["result"] = OpResult.okay(prior=prior)
            if versioned:
                old.set_pending(TOMBSTONE)
                old.owner_tc = tc_id
                return old
            return None  # physical removal

        _record, leaf = self._mutate_record(
            handle, tc_id, op.key, mutate, leaf, op_id, outcome
        )
        return outcome["result"], leaf

    def _apply_increment(
        self, handle: TableHandle, tc_id: int, op: IncrementOp, versioned: bool,
        leaf: Optional[LeafPage] = None,
        op_id: Lsn = 0,
    ) -> tuple[OpResult, LeafPage]:
        outcome: dict[str, OpResult] = {}

        def mutate(old: Optional[VersionedRecord]) -> Optional[VersionedRecord]:
            if old is None or not old.exists_for(read_committed=False):
                outcome["result"] = OpResult.not_found(
                    f"no record {op.key!r} in {op.table!r}"
                )
                return old
            current = old.visible_value(read_committed=False)
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                outcome["result"] = OpResult.error(
                    f"record {op.key!r} is not numeric"
                )
                return old
            updated = current + op.delta
            if versioned:
                old.set_pending(updated)
            else:
                old.committed = updated
            old.owner_tc = tc_id
            outcome["result"] = OpResult.okay(value=updated, prior=current)
            return old

        _record, leaf = self._mutate_record(
            handle, tc_id, op.key, mutate, leaf, op_id, outcome
        )
        return outcome["result"], leaf

    def _apply_version_cleanup(
        self,
        handle: TableHandle,
        tc_id: int,
        op_id: Lsn,
        op: Union[PromoteVersionsOp, DiscardVersionsOp],
    ) -> OpResult:
        """Promote/discard pending versions; per-record idempotent, so a
        mid-operation flush or crash re-applies harmlessly."""
        structure = handle.structure
        promote = isinstance(op, PromoteVersionsOp)
        touched: dict[int, LeafPage] = {}
        retention = self.config.snapshot_retention
        commit_seq = 0
        if promote:
            with self._admin_lock:
                self._version_clock += 1
                commit_seq = self._version_clock
        keep = self.config.snapshot_max_versions if retention > 0 else 0
        prune_floor = max(0, self._version_clock - retention)

        for key in op.keys:
            leaf = structure.find_leaf(key)
            if op_id and leaf.ablsn_for(tc_id).contains(op_id):
                continue

            def mutate(old: Optional[VersionedRecord]) -> Optional[VersionedRecord]:
                if old is None:
                    return None
                if promote:
                    old.promote_pending(commit_seq=commit_seq, keep_history=keep)
                    if retention > 0:
                        old.prune_history(prune_floor)
                else:
                    old.discard_pending()
                return None if old.is_dead() else old

            _record, final_leaf = self._mutate_record(handle, tc_id, key, mutate)
            touched[final_leaf.page_id] = final_leaf
        if op_id:
            for leaf in touched.values():
                with leaf.latch:
                    leaf.ablsn_for(tc_id).include(op_id)
                    leaf.dirty = True
        self.metrics.incr(
            "dc.version_promotes" if promote else "dc.version_discards"
        )
        return OpResult.okay()

    # -- reads --------------------------------------------------------------------------------

    def _execute_read(
        self, handle: TableHandle, tc_id: int, op: LogicalOperation
    ) -> OpResult:
        structure = handle.structure
        if isinstance(op, ReadOp):
            if op.flavor is ReadFlavor.SNAPSHOT:
                if op.as_of < self.snapshot_floor():
                    return OpResult.error(
                        f"snapshot {op.as_of} is older than the retention "
                        f"floor {self.snapshot_floor()}"
                    )
                record = structure.get_record(op.key)
                value = record.snapshot_value(op.as_of) if record else None
                if value is None:
                    return OpResult.not_found()
                return OpResult.okay(value=value)
            read_committed = op.flavor is ReadFlavor.READ_COMMITTED
            record = structure.get_record(op.key)
            if record is None or not record.exists_for(read_committed):
                return OpResult.not_found()
            return OpResult.okay(value=record.visible_value(read_committed))
        if isinstance(op, RangeReadOp):
            if op.flavor is ReadFlavor.SNAPSHOT:
                if op.as_of < self.snapshot_floor():
                    return OpResult.error(
                        f"snapshot {op.as_of} is older than the retention "
                        f"floor {self.snapshot_floor()}"
                    )
                views = []
                for record in structure.iter_range(op.low, op.high):
                    if op.low_exclusive and record.key == op.low:
                        continue
                    value = record.snapshot_value(op.as_of)
                    if value is None:
                        continue
                    views.append(RecordView(record.key, value))
                    if op.limit is not None and len(views) >= op.limit:
                        break
                return OpResult(records=tuple(views))
            read_committed = op.flavor is ReadFlavor.READ_COMMITTED
            views = []
            for record in structure.iter_range(op.low, op.high):
                if op.low_exclusive and record.key == op.low:
                    continue
                if not record.exists_for(read_committed):
                    continue
                views.append(
                    RecordView(record.key, record.visible_value(read_committed))
                )
                if op.limit is not None and len(views) >= op.limit:
                    break
            return OpResult(records=tuple(views))
        if isinstance(op, ProbeNextKeysOp):
            keys = structure.next_keys(
                op.after, op.count, op.until, inclusive=op.inclusive
            )
            return OpResult(keys=tuple(keys))
        return OpResult.error(f"unknown read {type(op).__name__}")

    # -- contract maintenance ---------------------------------------------------------------------

    def end_of_stable_log(self, tc_id: int, eosl: Lsn) -> None:
        self._check_up()
        self.buffer.note_eosl(tc_id, eosl)

    def low_water_mark(self, tc_id: int, lwm: Lsn) -> None:
        self._check_up()
        with self.buffer.operation():
            self.buffer.note_lwm(tc_id, lwm)

    def checkpoint(self, tc_id: int, new_rssp: Lsn) -> Lsn:
        """Make stable all pages with operations below ``new_rssp``.

        Returns the RSSP the TC may now advance to (``new_rssp`` on
        success, NULL_LSN when some page could not be flushed yet).
        """
        self._check_up()
        self.metrics.incr("dc.checkpoints")
        with self.buffer.operation():
            done = self.buffer.flush_for_checkpoint(new_rssp)
        return new_rssp if done else NULL_LSN

    def begin_restart(
        self,
        tc_id: int,
        stable_lsn: Lsn,
        mode: ResetMode = ResetMode.RECORD_RESET,
    ) -> dict[str, int]:
        """TC-crash reset (Section 5.3.2 / 6.1.2): shed lost-operation state."""
        self._check_up()
        self.metrics.incr("dc.tc_restarts")
        with self.buffer.operation():
            return self.buffer.reset_after_tc_crash(tc_id, stable_lsn, mode)

    def snapshot_floor(self) -> int:
        """Oldest watermark still served under the retention horizon."""
        if self.config.snapshot_retention <= 0:
            return self._version_clock
        return max(0, self._version_clock - self.config.snapshot_retention)

    def version_watermark(self) -> int:
        return self._version_clock

    # -- DC-local checkpoint (truncates the DC log) ---------------------------------------------------

    def checkpoint_dc_log(self) -> bool:
        """Flush everything and truncate the DC log; False if blocked."""
        self._check_up()
        with self._admin_lock, self.buffer.operation():
            self.buffer.flush_all()
            if self.buffer.dirty_count() > 0:
                return False
            descriptors = {
                name: handle.descriptor for name, handle in self._tables.items()
            }
            for name, handle in self._tables.items():
                if isinstance(handle.structure, BTree):
                    descriptors[name].root_id = handle.structure.root_id
            self.recovery.save_catalog(descriptors)
            self.dclog.truncate_before(self.dclog.last_dlsn + 1)
            self.metrics.incr("dc.log_truncations")
        self.hint_rssp_advance()
        return True

    def hint_rssp_advance(self) -> None:
        """Spontaneous contract termination (Section 4.2.1).

        When the cache holds no dirty page, every *applied* operation is
        stable; operations at or below a TC's low-water mark are known
        applied (no gaps).  So each hinted TC may stop resending anything
        below ``LWM + 1`` as far as this DC is concerned.
        """
        if self.buffer.dirty_count() > 0:
            return
        for tc_id, hint in list(self._rssp_hint.items()):
            if tc_id in self._redo_pending:
                # Same refusal as the checkpoint gate: nothing is "known
                # applied" for a TC whose redo stream is still open.
                continue
            lwm = self.buffer._lwm.get(tc_id, NULL_LSN)
            if lwm > NULL_LSN:
                self.metrics.incr("dc.rssp_hints")
                hint(self.name, lwm + 1)

    # -- failure injection & recovery ---------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; stable storage survives."""
        if _sched.ACTIVE is not None:
            _sched.note_event("dc.crash", self.name)
        self._crashed = True
        self._incarnation += 1
        self.buffer.crash()
        self._tables.clear()
        self.metrics.incr("dc.crashes")
        for listener in list(self.on_crash):
            listener(self.name, "dc")

    def recover(self, notify_tcs: bool = True) -> dict[str, object]:
        """DC restart: rebuild catalog + well-formed structures (Section 5.2.2).

        System-transaction effects replay (via the stable-page loader)
        *before* any TC redo is accepted; each tree is validated to assert
        the well-formedness contract.  Optionally prompts registered TCs to
        begin their redo ("an out-of-band prompt is passed to TC").
        """
        if self.faults is not None:
            from repro.sim.faults import FaultPoint

            self.faults.hit(FaultPoint.DC_RESTART, self.name)
        if _sched.ACTIVE is not None:
            _sched.note_event("dc.recover.begin", self.name)
        with self._admin_lock:
            self.buffer.crash()
            catalog = self.recovery.recover_catalog()
            self.dclog.advance_past(self.recovery.highest_stable_dlsn())
            self._tables = {}
            for name, descriptor in catalog.items():
                if descriptor.kind in self._structure_factories:
                    structure: Structure = self._structure_factories[
                        descriptor.kind
                    ](self, name, descriptor)  # type: ignore[assignment]
                elif descriptor.kind == "btree":
                    structure = BTree(
                        name,
                        self.storage,
                        self.buffer,
                        self.dclog,
                        self.config,
                        self.metrics,
                        ensure_stable=self._ensure_tc_stable,
                        root_id=descriptor.root_id,
                    )
                elif descriptor.kind == "heap":
                    structure = HashedHeap(
                        name,
                        self.storage,
                        self.buffer,
                        self.dclog,
                        self.config,
                        self.metrics,
                        ensure_stable=self._ensure_tc_stable,
                        bucket_ids=list(descriptor.bucket_ids),
                    )
                else:
                    raise ReproError(
                        f"table {name!r} has kind {descriptor.kind!r} but no "
                        f"structure factory is registered for it"
                    )
                structure.validate()
                self._tables[name] = TableHandle(descriptor, structure)
            self._recover_version_clock()
            # Open the redo window: every TC we are about to prompt must
            # finish its redo resend (RedoComplete) before its ordinary
            # operations are served again.  Without prompts there is no
            # resender, so no window.
            self._redo_pending = set(self._restart_prompt) if notify_tcs else set()
            self._crashed = False
            self.metrics.incr("dc.recoveries")
        if _sched.ACTIVE is not None:
            # Structures are rebuilt and validated: redo may now apply.
            _sched.note_event("dc.recover.ready", self.name)
        if notify_tcs:
            self.prompt_redo()
        return {"tables": len(self._tables)}

    def prompt_redo(self) -> None:
        """Out-of-band prompt to every registered TC: this DC restarted and
        lost its cache, begin redo from the redo scan start point.  Safe to
        repeat — a duplicate prompt's redo stream is absorbed by abLSNs —
        so a supervisor can retry it until it completes."""
        for prompt in list(self._restart_prompt.values()):
            prompt(self)

    def _recover_version_clock(self) -> None:
        """Resume the commit-sequence clock above every stamped version so
        per-record histories stay monotone across DC restarts (pre-crash
        snapshot watermarks themselves do not survive)."""
        top = self._version_clock
        for handle in self._tables.values():
            if not handle.descriptor.versioned:
                continue
            for record in handle.structure.iter_range(None, None):
                seq = record.max_seq()
                if seq > top:
                    top = seq
        self._version_clock = top

    def stats(self) -> dict[str, object]:
        """Introspection snapshot: per-table structure shape + cache/log."""
        tables = {}
        for name, handle in self._tables.items():
            structure = handle.structure
            entry: dict[str, object] = {
                "kind": handle.descriptor.kind,
                "versioned": handle.descriptor.versioned,
                "records": structure.record_count(),
                "leaves": len(structure.leaf_ids()),
            }
            depth = getattr(structure, "depth", None)
            if callable(depth):
                entry["depth"] = depth()
            tables[name] = entry
        return {
            "name": self.name,
            "tables": tables,
            "cached_pages": len(self.buffer.cached_ids()),
            "dirty_pages": self.buffer.dirty_count(),
            "stable_pages": self.storage.page_count(),
            "dclog_records": self.storage.dc_log_length(),
            "version_clock": self._version_clock,
        }

    @property
    def crashed(self) -> bool:
        return self._crashed
