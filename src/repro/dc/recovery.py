"""DC structure recovery: well-formed indexes *before* TC redo (Section 5.2).

The recovery contract (Section 4.2) requires the DC to restore its search
structures to well-formed-ness before the TC replays any logical operation,
which moves system-transaction redo *ahead of* all TC-level recovery — out
of the original execution order.  The page-level idempotence that makes
this safe comes from dLSNs (for SMO effects) and abLSNs carried inside
physically-logged page images (for TC-operation effects).

The central primitive is :func:`stable_page_state`: the page image that
replaying the stable DC log over the stable (disk) version produces.  It is
used three ways:

1. as the buffer pool's loader, so a cache miss transparently reconstructs
   pages that exist only as DC-log images (e.g. the new page of a split
   that was never flushed);
2. as the baseline for record-level reset after a TC crash (Section 6.1.2);
3. by :class:`DcRecoveryManager.recover_catalog` at DC restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.lsn import Lsn, NULL_LSN
from repro.dc.dclog import (
    CatalogRecord,
    DcLogRecord,
    KeysRemovedRecord,
    PageFreeRecord,
    PageImageRecord,
    RootChangedRecord,
)
from repro.sim.metrics import Metrics
from repro.storage.disk import StableStorage
from repro.storage.page import LeafPage, PageImage


def stable_page_state(storage: StableStorage, page_id: int) -> Optional[PageImage]:
    """The page as the stable state (disk + stable DC log) defines it.

    Starts from the disk image (if any) and applies every stable DC-log
    record for this page with a higher dLSN, in log order.  Returns ``None``
    when the page does not exist in stable state (never created, or freed).
    """
    disk = storage.read_page(page_id)
    live = disk.materialize() if disk is not None else None
    for record in storage.dc_log_entries():
        if not isinstance(record, DcLogRecord):
            continue
        if isinstance(record, PageImageRecord) and record.page_id == page_id:
            if live is None or live.dlsn < record.dlsn:
                assert record.image is not None
                live = record.image.materialize()
        elif isinstance(record, KeysRemovedRecord) and record.page_id == page_id:
            if live is not None and live.dlsn < record.dlsn:
                assert isinstance(live, LeafPage)
                live.extract_from(record.split_key)
                live.dlsn = record.dlsn
        elif isinstance(record, PageFreeRecord) and record.page_id == page_id:
            live = None
    return live.snapshot() if live is not None else None


@dataclass
class TableDescriptor:
    """Catalog entry: everything needed to rebuild a table object.

    ``extra`` carries opaque metadata for plug-in access methods
    (Section 1.1's extensibility: custom structures registered with
    :meth:`~repro.dc.data_component.DataComponent.register_structure_kind`
    persist whatever they need to rebuild themselves here).
    """

    name: str
    kind: str  # "btree" | "heap" | a registered custom kind
    versioned: bool = False
    root_id: int = 0
    bucket_ids: list[int] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def to_metadata(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "versioned": self.versioned,
            "root_id": self.root_id,
            "bucket_ids": list(self.bucket_ids),
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_metadata(raw: dict[str, object]) -> "TableDescriptor":
        return TableDescriptor(
            name=str(raw["name"]),
            kind=str(raw["kind"]),
            versioned=bool(raw["versioned"]),
            root_id=int(raw["root_id"]),  # type: ignore[arg-type]
            bucket_ids=list(raw["bucket_ids"]),  # type: ignore[arg-type]
            extra=dict(raw.get("extra", {})),  # type: ignore[arg-type]
        )


class DcRecoveryManager:
    """Recovers DC metadata and tracks the highest stable dLSN."""

    def __init__(self, storage: StableStorage, metrics: Optional[Metrics] = None) -> None:
        self._storage = storage
        self.metrics = metrics or Metrics()

    # -- loader for the buffer pool ------------------------------------------

    def load_page(self, page_id: int) -> Optional[PageImage]:
        return stable_page_state(self._storage, page_id)

    # -- catalog -----------------------------------------------------------------

    def save_catalog(self, descriptors: dict[str, TableDescriptor]) -> None:
        self._storage.write_metadata(
            "catalog", {name: d.to_metadata() for name, d in descriptors.items()}
        )

    def recover_catalog(self) -> dict[str, TableDescriptor]:
        """Stable catalog metadata + RootChanged replay = current catalog."""
        raw = self._storage.read_metadata("catalog", {})
        catalog = {
            name: TableDescriptor.from_metadata(entry)  # type: ignore[arg-type]
            for name, entry in raw.items()  # type: ignore[union-attr]
        }
        for record in self._storage.dc_log_entries():
            if isinstance(record, CatalogRecord) and record.descriptor is not None:
                descriptor = TableDescriptor.from_metadata(record.descriptor)
                catalog[descriptor.name] = descriptor
            elif isinstance(record, RootChangedRecord) and record.table in catalog:
                catalog[record.table].root_id = record.new_root
        self.metrics.incr("dc.catalog_recoveries")
        return catalog

    # -- log bookkeeping -------------------------------------------------------------

    def highest_stable_dlsn(self) -> Lsn:
        top = NULL_LSN
        for record in self._storage.dc_log_entries():
            if isinstance(record, DcLogRecord) and record.dlsn > top:
                top = record.dlsn
        return top

    def log_record_count(self) -> int:
        return self._storage.dc_log_length()
